#include "core/pool_manager.h"

#include <algorithm>

#include "common/logging.h"
#include "common/trace.h"

namespace lmp::core {
namespace {

// Compact location label for trace-event args ("pool" or "s<N>").
std::string LocationLabel(const Location& loc) {
  return loc.is_pool() ? "pool" : "s" + std::to_string(loc.server);
}

}  // namespace

PoolManager::PoolManager(cluster::Cluster* cluster,
                         std::unique_ptr<PlacementPolicy> policy)
    : cluster_(cluster),
      policy_(policy ? std::move(policy)
                     : std::make_unique<LocalFirstPlacement>()) {
  LMP_CHECK(cluster != nullptr);
}

void PoolManager::set_placement(std::unique_ptr<PlacementPolicy> policy) {
  LMP_CHECK(policy != nullptr);
  policy_ = std::move(policy);
}

LocalFrameMap& PoolManager::local_map(const Location& loc) {
  auto it = local_maps_.find(loc);
  if (it == local_maps_.end()) {
    it = local_maps_.emplace(loc, LocalFrameMap(cluster_->config().frame_size))
             .first;
  }
  return it->second;
}

mem::BackingStore* PoolManager::BackingAt(const Location& loc) {
  if (loc.is_pool()) {
    return cluster_->pool().has_backing() ? &cluster_->pool().backing()
                                          : nullptr;
  }
  auto& srv = cluster_->server(loc.server);
  return srv.has_backing() ? &srv.backing() : nullptr;
}

namespace {

// Resolve an AllocOptions cohort against one allocator: get-or-create the
// named locus (registration order is deterministic per allocator) and
// build the frame-level request.  Empty cohort = the default locus.
mem::AllocRequest FrameRequestFor(mem::FrameAllocator& alloc,
                                  std::uint64_t frames,
                                  const AllocOptions& options) {
  mem::AllocRequest request;
  request.frames = frames;
  if (!options.locus.empty()) {
    request.locus = alloc.RegisterLocus(
        mem::LocusSpec{options.locus, options.mobility, /*buffer_frames=*/0});
  }
  return request;
}

}  // namespace

StatusOr<std::vector<mem::FrameRun>> PoolManager::AllocateFramesAt(
    const Location& loc, Bytes bytes, const AllocOptions& options) {
  const Bytes frame_size = cluster_->config().frame_size;
  const std::uint64_t frames = mem::FramesForBytes(bytes, frame_size);
  if (loc.is_pool()) {
    auto& alloc = cluster_->pool().allocator();
    return alloc.Allocate(FrameRequestFor(alloc, frames, options));
  }
  auto& srv = cluster_->server(loc.server);
  if (srv.crashed()) return UnavailableError("server crashed");
  auto& alloc = srv.shared_allocator();
  return alloc.Allocate(FrameRequestFor(alloc, frames, options));
}

Status PoolManager::FreeFramesAt(const Location& loc,
                                 const std::vector<mem::FrameRun>& runs) {
  if (loc.is_pool()) return cluster_->pool().allocator().Free(runs);
  auto& srv = cluster_->server(loc.server);
  if (srv.crashed()) return Status::Ok();  // frames die with the host
  return srv.shared_allocator().Free(runs);
}

StatusOr<BufferId> PoolManager::Allocate(Bytes bytes,
                                         const AllocOptions& options) {
  if (bytes == 0) return InvalidArgumentError("zero-byte allocation");
  LMP_ASSIGN_OR_RETURN(std::vector<PlacementChunk> chunks,
                       policy_->Place(*cluster_, bytes, options.preferred));

  BufferInfo info;
  info.id = next_buffer_;
  info.size = bytes;

  // Materialise one segment per chunk.  On any failure, roll back fully.
  std::vector<std::pair<Location, std::vector<mem::FrameRun>>> allocated;
  auto rollback = [&] {
    for (std::size_t i = 0; i < allocated.size(); ++i) {
      LMP_CHECK_OK(FreeFramesAt(allocated[i].first, allocated[i].second));
      if (i < info.segments.size()) {
        (void)local_map(allocated[i].first).Unbind(info.segments[i]);
        (void)segments_.Remove(info.segments[i]);
      }
    }
  };

  for (const PlacementChunk& chunk : chunks) {
    const Location loc = Location::OnServer(chunk.server);
    auto frames_or = AllocateFramesAt(loc, chunk.bytes, options);
    if (!frames_or.ok()) {
      rollback();
      return frames_or.status();
    }
    allocated.emplace_back(loc, frames_or.value());

    SegmentInfo seg;
    seg.id = next_segment_++;
    seg.size = chunk.bytes;
    seg.home = loc;
    seg.locus = options.locus;
    seg.mobility = options.mobility;
    seg.priority = options.priority;
    Status st = segments_.Insert(seg);
    if (st.ok()) {
      st = local_map(loc).Bind(seg.id, chunk.bytes,
                               std::move(frames_or).value());
    }
    if (!st.ok()) {
      (void)segments_.Remove(seg.id);  // may or may not have been inserted
      rollback();
      return st;
    }
    info.segments.push_back(seg.id);
  }

  buffers_[info.id] = std::move(info);
  metrics_->Increment("lmp.alloc.buffers");
  metrics_->Increment("lmp.alloc.bytes", bytes);
  return next_buffer_++;
}

Status PoolManager::SplitSegmentAt(BufferId buffer, Bytes offset) {
  auto it = buffers_.find(buffer);
  if (it == buffers_.end()) return NotFoundError("unknown buffer");
  BufferInfo& info = it->second;
  if (offset == 0 || offset >= info.size) {
    return InvalidArgumentError("split offset must be inside the buffer");
  }
  const Bytes frame_size = cluster_->config().frame_size;
  if (offset % frame_size != 0) {
    return InvalidArgumentError("split offset must be frame-aligned");
  }

  // Locate the owning segment and the split point within it.
  Bytes seg_start = 0;
  for (std::size_t idx = 0; idx < info.segments.size(); ++idx) {
    SegmentInfo* seg = segments_.FindMutable(info.segments[idx]);
    LMP_CHECK(seg != nullptr);
    const Bytes seg_end = seg_start + seg->size;
    if (offset == seg_start || offset == seg_end) {
      return Status::Ok();  // already a segment boundary: nothing to do
    }
    if (offset < seg_end) {
      if (seg->state != SegmentState::kActive) {
        return FailedPreconditionError("segment not active");
      }
      if (!seg->replicas.empty()) {
        return FailedPreconditionError(
            "cannot split a replicated segment");
      }
      const Bytes within = offset - seg_start;
      // Partition the frame runs at `within`.
      LMP_ASSIGN_OR_RETURN(auto runs, local_map(seg->home).RunsOf(seg->id));
      std::vector<mem::FrameRun> head, tail;
      Bytes covered = 0;
      for (const mem::FrameRun& run : runs) {
        const Bytes run_bytes = run.count * frame_size;
        if (covered + run_bytes <= within) {
          head.push_back(run);
        } else if (covered >= within) {
          tail.push_back(run);
        } else {
          const std::uint64_t head_frames =
              (within - covered) / frame_size;
          head.push_back(mem::FrameRun{run.first, head_frames});
          tail.push_back(mem::FrameRun{run.first + head_frames,
                                       run.count - head_frames});
        }
        covered += run_bytes;
      }

      // New segment for the tail; shrink the head in place.
      SegmentInfo tail_seg;
      tail_seg.id = next_segment_++;
      tail_seg.size = seg->size - within;
      tail_seg.home = seg->home;
      tail_seg.locus = seg->locus;
      tail_seg.mobility = seg->mobility;
      tail_seg.priority = seg->priority;
      LMP_RETURN_IF_ERROR(segments_.Insert(tail_seg));
      const Location home = seg->home;
      LMP_CHECK_OK(local_map(home).Unbind(seg->id));
      seg->size = within;
      ++seg->generation;  // cached translations must re-resolve
      LMP_CHECK_OK(local_map(home).Bind(seg->id, within, std::move(head)));
      LMP_CHECK_OK(local_map(home).Bind(tail_seg.id, tail_seg.size,
                                        std::move(tail)));
      info.segments.insert(info.segments.begin() + idx + 1, tail_seg.id);
      metrics_->Increment("lmp.segment.splits");
      return Status::Ok();
    }
    seg_start = seg_end;
  }
  return InternalError("split offset not covered by segments");
}

Status PoolManager::Grow(BufferId buffer, Bytes delta,
                         const AllocOptions& options) {
  auto it = buffers_.find(buffer);
  if (it == buffers_.end()) return NotFoundError("unknown buffer");
  if (delta == 0) return InvalidArgumentError("zero-byte grow");
  // Place and materialise the extension exactly like a fresh allocation,
  // then splice its segments onto the existing buffer.
  LMP_ASSIGN_OR_RETURN(BufferId extension, Allocate(delta, options));
  BufferInfo& ext_info = buffers_.at(extension);
  BufferInfo& info = buffers_.at(buffer);  // re-lookup: Allocate rehashed
  info.segments.insert(info.segments.end(), ext_info.segments.begin(),
                       ext_info.segments.end());
  info.size += delta;
  buffers_.erase(extension);
  metrics_->Increment("lmp.grow.bytes", delta);
  return Status::Ok();
}

Status PoolManager::Shrink(BufferId buffer, Bytes new_size) {
  auto it = buffers_.find(buffer);
  if (it == buffers_.end()) return NotFoundError("unknown buffer");
  BufferInfo& info = it->second;
  if (new_size == 0 || new_size > info.size) {
    return InvalidArgumentError("bad shrink size");
  }
  if (new_size == info.size) return Status::Ok();

  // Find the segment boundary at `new_size`.
  Bytes covered = 0;
  std::size_t keep = 0;
  for (; keep < info.segments.size() && covered < new_size; ++keep) {
    covered += segments_.Find(info.segments[keep])->size;
  }
  if (covered != new_size) {
    return FailedPreconditionError(
        "shrink point inside a segment; SplitSegmentAt first");
  }

  // Release the tail segments (and their replicas).
  for (std::size_t i = keep; i < info.segments.size(); ++i) {
    const SegmentId seg = info.segments[i];
    const SegmentInfo* si = segments_.Find(seg);
    LMP_CHECK(si != nullptr);
    if (si->state != SegmentState::kLost) {
      auto runs_or = local_map(si->home).RunsOf(seg);
      if (runs_or.ok()) {
        LMP_CHECK_OK(FreeFramesAt(si->home, runs_or.value()));
        LMP_CHECK_OK(local_map(si->home).Unbind(seg));
      }
    }
    for (const Location& rep : si->replicas) {
      auto runs_or = local_map(rep).RunsOf(seg);
      if (runs_or.ok()) {
        LMP_CHECK_OK(FreeFramesAt(rep, runs_or.value()));
        LMP_CHECK_OK(local_map(rep).Unbind(seg));
      }
    }
    tracker_.Forget(seg);
    LMP_CHECK_OK(segments_.Remove(seg));
  }
  metrics_->Increment("lmp.shrink.bytes", info.size - new_size);
  info.segments.resize(keep);
  info.size = new_size;
  return Status::Ok();
}

PoolManager::PoolSnapshot PoolManager::Snapshot(SimTime now) const {
  PoolSnapshot snap;
  snap.buffers = buffers_.size();
  snap.segments = segments_.size();
  for (int s = 0; s < cluster_->num_servers(); ++s) {
    const auto id = static_cast<cluster::ServerId>(s);
    const auto& srv = cluster_->server(id);
    PoolSnapshot::ServerEntry entry;
    entry.server = id;
    entry.crashed = srv.crashed();
    entry.shared = srv.shared_bytes();
    entry.used = srv.shared_allocator().used_frames() * srv.frame_size();
    snap.servers.push_back(entry);
  }
  // Balancer backlog: per home server, bytes of segments whose dominant
  // accessor is some other server.
  segments_.ForEach([&](const SegmentInfo& info) {
    if (info.home.is_pool() || info.state != SegmentState::kActive) return;
    AccessTracker::DominantAccessor dom;
    if (!tracker_.Dominant(info.id, now, &dom)) return;
    if (dom.server != info.home.server) {
      snap.servers[info.home.server].remote_hot += info.size;
    }
  });
  return snap;
}

Status PoolManager::Free(BufferId buffer) {
  auto it = buffers_.find(buffer);
  if (it == buffers_.end()) return NotFoundError("unknown buffer");
  for (SegmentId seg : it->second.segments) {
    const SegmentInfo* info = segments_.Find(seg);
    LMP_CHECK(info != nullptr);
    if (info->state != SegmentState::kLost) {
      auto runs_or = local_map(info->home).RunsOf(seg);
      if (runs_or.ok()) {
        LMP_CHECK_OK(FreeFramesAt(info->home, runs_or.value()));
        LMP_CHECK_OK(local_map(info->home).Unbind(seg));
      }
    }
    // Free replica frames too.
    for (const Location& rep : info->replicas) {
      auto runs_or = local_map(rep).RunsOf(seg);
      if (runs_or.ok()) {
        LMP_CHECK_OK(FreeFramesAt(rep, runs_or.value()));
        LMP_CHECK_OK(local_map(rep).Unbind(seg));
      }
    }
    tracker_.Forget(seg);
    LMP_CHECK_OK(segments_.Remove(seg));
  }
  buffers_.erase(it);
  metrics_->Increment("lmp.free.buffers");
  return Status::Ok();
}

StatusOr<BufferInfo> PoolManager::Describe(BufferId buffer) const {
  auto it = buffers_.find(buffer);
  if (it == buffers_.end()) return NotFoundError("unknown buffer");
  return it->second;
}

StatusOr<std::vector<PoolManager::ResolvedPiece>> PoolManager::ResolveRange(
    BufferId buffer, Bytes offset, Bytes len) const {
  auto it = buffers_.find(buffer);
  if (it == buffers_.end()) return NotFoundError("unknown buffer");
  const BufferInfo& info = it->second;
  if (offset + len > info.size) {
    return InvalidArgumentError("range exceeds buffer size");
  }

  std::vector<ResolvedPiece> pieces;
  Bytes seg_start = 0;
  Bytes remaining = len;
  Bytes pos = offset;
  for (SegmentId seg : info.segments) {
    if (remaining == 0) break;
    const SegmentInfo* si = segments_.Find(seg);
    LMP_CHECK(si != nullptr);
    const Bytes seg_end = seg_start + si->size;
    if (pos < seg_end) {
      const Bytes within = pos - seg_start;
      const Bytes take = std::min(remaining, si->size - within);
      pieces.push_back(ResolvedPiece{seg, within, take});
      pos += take;
      remaining -= take;
    }
    seg_start = seg_end;
  }
  if (remaining != 0) return InternalError("segments shorter than buffer");
  return pieces;
}

StatusOr<std::vector<LocatedSpan>> PoolManager::Spans(BufferId buffer,
                                                      Bytes offset,
                                                      Bytes len) const {
  LMP_ASSIGN_OR_RETURN(auto pieces, ResolveRange(buffer, offset, len));
  std::vector<LocatedSpan> spans;
  for (const ResolvedPiece& p : pieces) {
    const SegmentInfo* si = segments_.Find(p.segment);
    LMP_CHECK(si != nullptr);
    if (si->state == SegmentState::kLost) {
      return DataLossError("segment " + std::to_string(p.segment) +
                           " lost to a crash");
    }
    if (!spans.empty() && spans.back().location == si->home) {
      spans.back().bytes += p.len;
    } else {
      spans.push_back(LocatedSpan{si->home, p.len, p.segment});
    }
  }
  return spans;
}

StatusOr<double> PoolManager::LocalFraction(BufferId buffer,
                                            cluster::ServerId server) const {
  auto it = buffers_.find(buffer);
  if (it == buffers_.end()) return NotFoundError("unknown buffer");
  LMP_ASSIGN_OR_RETURN(auto spans, Spans(buffer, 0, it->second.size));
  Bytes local = 0;
  for (const auto& s : spans) {
    if (!s.location.is_pool() && s.location.server == server) {
      local += s.bytes;
    }
  }
  return static_cast<double>(local) / static_cast<double>(it->second.size);
}

Status PoolManager::AccessImpl(cluster::ServerId from, BufferId buffer,
                               Bytes offset, Bytes len,
                               std::span<std::byte> read_out,
                               std::span<const std::byte> write_in,
                               SimTime now) {
  LMP_ASSIGN_OR_RETURN(auto pieces, ResolveRange(buffer, offset, len));
  const Bytes frame_size = cluster_->config().frame_size;

  Bytes cursor = 0;  // position within read_out / write_in
  for (const ResolvedPiece& p : pieces) {
    const SegmentInfo* si = segments_.Find(p.segment);
    LMP_CHECK(si != nullptr);
    if (si->state == SegmentState::kLost) {
      return DataLossError("segment lost");
    }
    tracker_.RecordAccess(p.segment, from, static_cast<double>(p.len), now);

    if (read_out.empty() && write_in.empty()) {
      cursor += p.len;
      continue;  // Touch(): accounting only
    }

    mem::BackingStore* store = BackingAt(si->home);
    if (store == nullptr) {
      return FailedPreconditionError(
          "cluster built without backing stores; use Touch()");
    }
    const Bytes piece_start = cursor;
    LMP_ASSIGN_OR_RETURN(
        auto extents,
        local_maps_.at(si->home).Resolve(p.segment, p.seg_offset, p.len));
    for (const PhysicalExtent& e : extents) {
      const Bytes byte_off = e.frame * frame_size + e.offset_in_frame;
      if (!read_out.empty()) {
        store->Read(byte_off, read_out.subspan(cursor, e.length));
      } else {
        store->Write(byte_off, write_in.subspan(cursor, e.length));
      }
      cursor += e.length;
    }
    if (read_out.empty() && !si->replicas.empty()) {
      // Write-through to every replica.  Failure masking (§5) and the
      // zero-copy migration fast path both promote a replica wholesale, so
      // the copies must track the primary byte-for-byte — a point-in-time
      // copy silently reverts every write made since protection.
      for (const Location& rep : si->replicas) {
        mem::BackingStore* rstore = BackingAt(rep);
        if (rstore == nullptr) continue;
        LMP_ASSIGN_OR_RETURN(
            auto rep_extents,
            local_maps_.at(rep).Resolve(p.segment, p.seg_offset, p.len));
        Bytes rep_cursor = piece_start;
        for (const PhysicalExtent& e : rep_extents) {
          rstore->Write(e.frame * frame_size + e.offset_in_frame,
                        write_in.subspan(rep_cursor, e.length));
          rep_cursor += e.length;
        }
      }
    }
  }
  return Status::Ok();
}

Status PoolManager::Read(cluster::ServerId from, BufferId buffer,
                         Bytes offset, std::span<std::byte> out,
                         SimTime now) {
  return AccessImpl(from, buffer, offset, out.size(), out, {}, now);
}

Status PoolManager::Write(cluster::ServerId from, BufferId buffer,
                          Bytes offset, std::span<const std::byte> in,
                          SimTime now) {
  return AccessImpl(from, buffer, offset, in.size(), {}, in, now);
}

Status PoolManager::Touch(cluster::ServerId from, BufferId buffer,
                          Bytes offset, Bytes len, SimTime now) {
  return AccessImpl(from, buffer, offset, len, {}, {}, now);
}

Status PoolManager::CopySegmentData(SegmentId seg, const Location& from,
                                    const std::vector<mem::FrameRun>& from_runs,
                                    const Location& to,
                                    const std::vector<mem::FrameRun>& to_runs,
                                    Bytes size) {
  mem::BackingStore* src = BackingAt(from);
  mem::BackingStore* dst = BackingAt(to);
  if (src == nullptr || dst == nullptr) return Status::Ok();  // timing-only

  const Bytes frame_size = cluster_->config().frame_size;
  // Flatten both run lists into frame sequences and copy frame by frame.
  auto for_each_frame = [&](const std::vector<mem::FrameRun>& runs,
                            auto&& fn) {
    for (const auto& r : runs) {
      for (mem::FrameNumber f = r.first; f < r.end(); ++f) fn(f);
    }
  };
  std::vector<mem::FrameNumber> src_frames, dst_frames;
  for_each_frame(from_runs,
                 [&](mem::FrameNumber f) { src_frames.push_back(f); });
  for_each_frame(to_runs,
                 [&](mem::FrameNumber f) { dst_frames.push_back(f); });
  const std::uint64_t needed = mem::FramesForBytes(size, frame_size);
  if (src_frames.size() < needed || dst_frames.size() < needed) {
    return InternalError("copy: runs shorter than segment");
  }
  for (std::uint64_t i = 0; i < needed; ++i) {
    auto s = src->Frame(src_frames[i]);
    auto d = dst->Frame(dst_frames[i]);
    std::copy(s.begin(), s.end(), d.begin());
  }
  (void)seg;
  return Status::Ok();
}

StatusOr<MigrationRecord> PoolManager::MigrateSegment(SegmentId seg,
                                                      cluster::ServerId dst) {
  SegmentInfo* info = segments_.FindMutable(seg);
  if (info == nullptr) return NotFoundError("unknown segment");
  if (info->state != SegmentState::kActive) {
    return FailedPreconditionError("segment not active");
  }
  const Location to = Location::OnServer(dst);
  if (info->home == to) {
    return FailedPreconditionError("segment already homed at destination");
  }
  if (cluster_->server(dst).crashed()) {
    return UnavailableError("destination crashed");
  }

  const Location from = info->home;

  // Fast path: the destination already holds a replica — promote it and
  // demote the old primary to replica status.  Zero bytes move; only the
  // coarse map changes (and stale translations age out by generation).
  for (Location& rep : info->replicas) {
    if (rep == to) {
      rep = from;
      LMP_CHECK_OK(segments_.UpdateHome(seg, to));
      metrics_->Increment("lmp.migrate.promotions");
      if (trace_ != nullptr) {
        trace_->Instant(trace::Category::kMigration, "migrate_promote",
                        trace_->now(),
                        {trace::Arg("segment", seg),
                         trace::Arg("from", LocationLabel(from)),
                         trace::Arg("to", LocationLabel(to))});
      }
      return MigrationRecord{seg, from, to, /*bytes=*/0};
    }
  }

  LMP_ASSIGN_OR_RETURN(auto src_runs, local_map(from).RunsOf(seg));
  // Stay in the segment's cohort on the destination allocator so pinned
  // tenants pack high there too.
  LMP_ASSIGN_OR_RETURN(auto dst_runs,
                       AllocateFramesAt(to, info->size, CohortOf(*info)));

  info->state = SegmentState::kMigrating;
  Status st = CopySegmentData(seg, from, src_runs, to, dst_runs, info->size);
  if (st.ok()) {
    st = local_map(to).Bind(seg, info->size, dst_runs);
  }
  if (!st.ok()) {
    // Roll back fully: the segment stays active at its old home.
    info->state = SegmentState::kActive;
    LMP_CHECK_OK(FreeFramesAt(to, dst_runs));
    return st;
  }

  // Commit: re-home, release source.
  LMP_CHECK_OK(segments_.UpdateHome(seg, to));
  LMP_CHECK_OK(segments_.SetState(seg, SegmentState::kActive));
  LMP_CHECK_OK(local_map(from).Unbind(seg));
  LMP_CHECK_OK(FreeFramesAt(from, src_runs));

  metrics_->Increment("lmp.migrate.segments");
  metrics_->Increment("lmp.migrate.bytes", info->size);
  if (trace_ != nullptr) {
    trace_->Instant(trace::Category::kMigration, "migrate_segment",
                    trace_->now(),
                    {trace::Arg("segment", seg),
                     trace::Arg("from", LocationLabel(from)),
                     trace::Arg("to", LocationLabel(to)),
                     trace::Arg("bytes", info->size)});
  }
  return MigrationRecord{seg, from, to, info->size};
}

StatusOr<MigrationRecord> PoolManager::CompactSegment(SegmentId seg,
                                                      Bytes bound_bytes) {
  SegmentInfo* info = segments_.FindMutable(seg);
  if (info == nullptr) return NotFoundError("unknown segment");
  if (info->state != SegmentState::kActive) {
    return FailedPreconditionError("segment not active");
  }
  if (info->home.is_pool()) {
    return FailedPreconditionError("pool-homed segments have no shrink cut");
  }
  if (info->mobility == mem::Mobility::kPinned) {
    // Pinned cohorts opted out of being moved; their frames already pack
    // high, away from the shrink cut, so compacting them would fight the
    // allocator's own placement.
    return FailedPreconditionError("segment cohort is pinned");
  }
  auto& srv = cluster_->server(info->home.server);
  if (srv.crashed()) return UnavailableError("home crashed");

  const Bytes frame_size = cluster_->config().frame_size;
  const mem::FrameNumber bound =
      static_cast<mem::FrameNumber>(bound_bytes / frame_size);
  const Location home = info->home;
  LMP_ASSIGN_OR_RETURN(auto src_runs, local_map(home).RunsOf(seg));
  bool past_cut = false;
  for (const auto& r : src_runs) {
    if (r.end() > bound) {
      past_cut = true;
      break;
    }
  }
  if (!past_cut) return MigrationRecord{seg, home, home, /*bytes=*/0};

  const std::uint64_t frames = mem::FramesForBytes(info->size, frame_size);
  mem::AllocRequest request =
      FrameRequestFor(srv.shared_allocator(), frames, CohortOf(*info));
  request.bound = bound;
  LMP_ASSIGN_OR_RETURN(auto dst_runs, srv.shared_allocator().Allocate(request));

  info->state = SegmentState::kMigrating;
  const Status st =
      CopySegmentData(seg, home, src_runs, home, dst_runs, info->size);
  if (!st.ok()) {
    info->state = SegmentState::kActive;
    LMP_CHECK_OK(FreeFramesAt(home, dst_runs));
    return st;
  }
  // Commit: rebind to the packed frames, free the stragglers.  The home is
  // unchanged but the generation still bumps — cached translations may
  // have resolved frame-level addresses that just moved.
  LMP_CHECK_OK(local_map(home).Unbind(seg));
  LMP_CHECK_OK(local_map(home).Bind(seg, info->size, dst_runs));
  info->state = SegmentState::kActive;
  ++info->generation;
  LMP_CHECK_OK(FreeFramesAt(home, src_runs));

  metrics_->Increment("lmp.compact.segments");
  metrics_->Increment("lmp.compact.bytes", info->size);
  if (trace_ != nullptr) {
    trace_->Instant(trace::Category::kMigration, "compact_segment",
                    trace_->now(),
                    {trace::Arg("segment", seg),
                     trace::Arg("home", LocationLabel(home)),
                     trace::Arg("bytes", info->size)});
  }
  return MigrationRecord{seg, home, home, info->size};
}

StatusOr<std::vector<SegmentId>> PoolManager::OnServerCrash(
    cluster::ServerId server) {
  if (server >= static_cast<cluster::ServerId>(cluster_->num_servers())) {
    return NotFoundError("unknown server");
  }
  LMP_RETURN_IF_ERROR(cluster_->server(server).Crash());
  const Location crashed = Location::OnServer(server);
  // Replica copies on the crashed host are gone: scrub the records so no
  // later operation (promotion, free) dereferences dead frames.
  segments_.ForEach([&](const SegmentInfo& info) {
    SegmentInfo* mutable_info = segments_.FindMutable(info.id);
    std::erase(mutable_info->replicas, crashed);
  });
  std::vector<SegmentId> lost;
  for (SegmentId seg : segments_.SegmentsAt(crashed)) {
    SegmentInfo* info = segments_.FindMutable(seg);
    LMP_CHECK(info != nullptr);
    // Fail over to the first live replica, if any.
    bool recovered = false;
    for (const Location& rep : info->replicas) {
      const bool live =
          rep.is_pool() ? !cluster_->pool().crashed()
                        : !cluster_->server(rep.server).crashed();
      if (!live) continue;
      // Promote the replica to primary.
      info->home = rep;
      ++info->generation;
      info->replicas.erase(
          std::find(info->replicas.begin(), info->replicas.end(), rep));
      recovered = true;
      break;
    }
    if (trace_ != nullptr) {
      if (recovered) {
        trace_->Instant(trace::Category::kCrash, "failover", trace_->now(),
                        {trace::Arg("segment", seg),
                         trace::Arg("to", LocationLabel(info->home))});
      } else {
        trace_->Instant(trace::Category::kCrash, "segment_lost",
                        trace_->now(), {trace::Arg("segment", seg)});
      }
    }
    if (!recovered) {
      info->state = SegmentState::kLost;
      lost.push_back(seg);
    }
  }
  // Frames on the crashed host are gone; drop our bookkeeping for them.
  local_maps_.erase(crashed);
  metrics_->Increment("lmp.crash.servers");
  metrics_->Increment("lmp.crash.lost_segments", lost.size());
  if (trace_ != nullptr) {
    trace_->Instant(
        trace::Category::kCrash, "server_crash", trace_->now(),
        {trace::Arg("server", static_cast<std::uint64_t>(server)),
         trace::Arg("lost_segments",
                    static_cast<std::uint64_t>(lost.size()))});
  }
  return lost;
}

Status PoolManager::OnServerRecover(cluster::ServerId server) {
  if (server >= static_cast<cluster::ServerId>(cluster_->num_servers())) {
    return NotFoundError("unknown server");
  }
  LMP_RETURN_IF_ERROR(cluster_->server(server).Recover());
  metrics_->Increment("lmp.crash.recoveries");
  if (trace_ != nullptr) {
    trace_->Instant(trace::Category::kCrash, "server_recover", trace_->now(),
                    {trace::Arg("server", static_cast<std::uint64_t>(server))});
  }
  return Status::Ok();
}

AddressTranslator& PoolManager::translator(cluster::ServerId server) {
  auto it = translators_.find(server);
  if (it == translators_.end()) {
    it = translators_
             .emplace(server,
                      std::make_unique<AddressTranslator>(&segments_))
             .first;
  }
  return *it->second;
}

}  // namespace lmp::core
