#include "core/migration.h"

#include <algorithm>

#include "common/logging.h"
#include "common/trace.h"

namespace lmp::core {

MigrationEngine::MigrationEngine(PoolManager* manager, MigrationConfig config)
    : manager_(manager), config_(config) {
  LMP_CHECK(manager != nullptr);
}

StatusOr<MigrationRoundStats> MigrationEngine::RunOnce(
    SimTime now, std::vector<MigrationRecord>* records) {
  MigrationRoundStats stats;

  struct Candidate {
    SegmentId seg;
    cluster::ServerId dst;
    double score;  // projected traffic converted to local, net of copy cost
  };
  std::vector<Candidate> candidates;

  const bool scoped = config_.scope_limit > config_.scope_first;
  const AccessTracker& tracker = manager_->access_tracker();
  manager_->segment_map().ForEach([&](const SegmentInfo& info) {
    if (info.state != SegmentState::kActive) return;
    AccessTracker::DominantAccessor dom;
    if (!tracker.Dominant(info.id, now, &dom)) return;
    if (dom.share < config_.dominance_threshold) return;
    // Already local to the dominant accessor?
    if (!info.home.is_pool() && info.home.server == dom.server) return;
    if (scoped) {
      if (dom.server < config_.scope_first ||
          dom.server >= config_.scope_limit) {
        return;
      }
      if (info.home.is_pool() || info.home.server < config_.scope_first ||
          info.home.server >= config_.scope_limit) {
        return;  // homed off-rack: a pull grant's job, not this round's
      }
    }
    const double copy_cost = static_cast<double>(info.size);
    if (dom.bytes < config_.benefit_factor * copy_cost) return;
    candidates.push_back(Candidate{info.id, dom.server,
                                   dom.bytes - copy_cost});
  });

  stats.candidates = static_cast<int>(candidates.size());
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.score > b.score;
            });

  for (const Candidate& c : candidates) {
    if (stats.migrated >= config_.max_migrations_per_round) break;
    auto rec_or = manager_->MigrateSegment(c.seg, c.dst);
    if (!rec_or.ok()) {
      if (IsOutOfMemory(rec_or.status())) {
        ++stats.skipped_capacity;
        continue;
      }
      // A segment that started migrating/replicating between scoring and
      // execution is skipped this round, not a failure.
      if (IsFailedPrecondition(rec_or.status())) continue;
      return rec_or.status();
    }
    ++stats.migrated;
    stats.bytes_moved += rec_or->bytes;
    if (records != nullptr) records->push_back(rec_or.value());
  }
  if (trace::TraceCollector* t = manager_->trace(); t != nullptr) {
    t->Instant(trace::Category::kMigration, "migration_round", now,
               {trace::Arg("candidates", stats.candidates),
                trace::Arg("migrated", stats.migrated),
                trace::Arg("bytes", stats.bytes_moved),
                trace::Arg("skipped_capacity", stats.skipped_capacity)});
  }
  return stats;
}

}  // namespace lmp::core
