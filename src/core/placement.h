// Placement policies: where newly allocated pool memory lands (§1's "data
// placement" mechanism — the first of the paper's three locality tools,
// alongside migration and compute shipping).
//
// A policy splits an allocation into per-server chunks.  LocalFirst is the
// paper's implicit default (it produces the 8/24/64/96 GB layouts of §4.3–
// §4.5: fill the requesting server's shared region, then spill to the
// emptiest peers).  RoundRobin and CapacityWeighted are the comparison
// points for the placement ablation.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "cluster/cluster.h"
#include "common/status.h"
#include "common/units.h"

namespace lmp::core {

struct PlacementChunk {
  cluster::ServerId server = 0;
  Bytes bytes = 0;
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  virtual std::string_view name() const = 0;

  // Splits `bytes` across live servers' free shared capacity.  Fails with
  // kOutOfMemory when the pool cannot hold the allocation (Figure 5's
  // infeasibility case).  Chunks are returned in placement-priority order.
  virtual StatusOr<std::vector<PlacementChunk>> Place(
      const cluster::Cluster& cluster, Bytes bytes,
      std::optional<cluster::ServerId> preferred) = 0;
};

// Fill the preferred server first, then peers in descending free capacity.
class LocalFirstPlacement : public PlacementPolicy {
 public:
  std::string_view name() const override { return "local-first"; }
  StatusOr<std::vector<PlacementChunk>> Place(
      const cluster::Cluster& cluster, Bytes bytes,
      std::optional<cluster::ServerId> preferred) override;
};

// Stripe chunks of `stripe_bytes` across servers in rotation.
class RoundRobinPlacement : public PlacementPolicy {
 public:
  explicit RoundRobinPlacement(Bytes stripe_bytes = GiB(1))
      : stripe_bytes_(stripe_bytes) {}
  std::string_view name() const override { return "round-robin"; }
  StatusOr<std::vector<PlacementChunk>> Place(
      const cluster::Cluster& cluster, Bytes bytes,
      std::optional<cluster::ServerId> preferred) override;

 private:
  Bytes stripe_bytes_;
  std::uint32_t cursor_ = 0;
};

// Split proportionally to each server's free shared capacity.
class CapacityWeightedPlacement : public PlacementPolicy {
 public:
  std::string_view name() const override { return "capacity-weighted"; }
  StatusOr<std::vector<PlacementChunk>> Place(
      const cluster::Cluster& cluster, Bytes bytes,
      std::optional<cluster::ServerId> preferred) override;
};

std::unique_ptr<PlacementPolicy> MakePlacementPolicy(std::string_view name);

}  // namespace lmp::core
