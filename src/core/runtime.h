// LmpRuntime: the per-deployment runtime loop.
//
// §3.2: "the runtime must execute at least two background tasks: one for
// adjusting the size of shared regions to minimize remote accesses, and
// another to find opportunities for buffer migration."  Tick(now) runs
// whichever of the two is due; experiments drive it from simulated time
// (benchmarks) or loop iterations (functional tests).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/units.h"
#include "core/migration.h"
#include "core/pool_manager.h"
#include "core/sizing.h"

namespace lmp::core {

// A segment whose frames block a shared-region shrink (it holds at least
// one frame in the tail the resize would remove).
struct DrainVictim {
  SegmentId seg = kInvalidSegment;
  Bytes size = 0;
  double heat = 0;  // decayed traffic at selection time
  // From the segment's allocation cohort: pinned victims sort last and
  // drain schedulers skip them (their cohort opted out of being moved).
  bool pinned = false;
  double priority = 1.0;  // tenant priority; low drains first
};

// The active segments blocking a shrink of `server` to `target_bytes`:
// mobile before pinned, then lowest tenant priority, then coldest (they
// are the cheapest to lose locality on).  Empty when the shrink is already
// possible.  Shared by LmpRuntime::DrainServer and the ctrl-plane drain
// scheduler.
std::vector<DrainVictim> BlockedResidents(PoolManager& manager,
                                          cluster::ServerId server,
                                          Bytes target_bytes, SimTime now);

struct RuntimeConfig {
  SimTime migration_period = Milliseconds(10);
  SimTime sizing_period = Milliseconds(100);
  MigrationConfig migration;
  bool enable_migration = true;
  bool enable_sizing = true;
};

struct RuntimeStats {
  std::uint64_t migration_rounds = 0;
  std::uint64_t migrations = 0;
  Bytes bytes_migrated = 0;
  std::uint64_t sizing_rounds = 0;
  std::uint64_t sizing_deferred = 0;
};

class LmpRuntime {
 public:
  LmpRuntime(PoolManager* manager, RuntimeConfig config = {});

  // Registers/updates a server's demand declaration for the sizer.
  void SetDemand(const ServerDemand& demand);

  // Runs any background task whose period has elapsed since its last run.
  // Returns migrations executed this tick.
  std::vector<MigrationRecord> Tick(SimTime now);

  // Force both tasks to run now (tests, explicit rebalances).
  std::vector<MigrationRecord> RunAllNow(SimTime now);

  // Drains `server`'s shared region down to `target_bytes` by migrating
  // resident segments to peers (coldest first — they are the cheapest to
  // lose locality on), then applies the shrink.  This is how a blocked
  // SizingOptimizer::Apply shrink eventually lands: migration first, then
  // resize (§5 "Sizing the shared regions" meets "Locality balancing").
  // Fails with kOutOfMemory if peers cannot absorb the displaced bytes.
  StatusOr<std::vector<MigrationRecord>> DrainServer(
      cluster::ServerId server, Bytes target_bytes, SimTime now);

  const RuntimeStats& stats() const { return stats_; }
  MigrationEngine& migration_engine() { return migrator_; }

 private:
  void RunSizing();

  PoolManager* manager_;
  RuntimeConfig config_;
  MigrationEngine migrator_;
  std::unordered_map<cluster::ServerId, ServerDemand> demands_;
  SimTime last_migration_ = -1;
  SimTime last_sizing_ = -1;
  RuntimeStats stats_;
};

}  // namespace lmp::core
