// lmp::Pool — the public facade of the logical-memory-pool library.
//
// Quickstart:
//
//   auto pool_or = lmp::Pool::Create(lmp::PoolOptions::Paper());
//   auto& pool = *pool_or.value();
//   auto buf = pool.Allocate(lmp::GiB(1), /*preferred_server=*/0).value();
//   std::vector<double> v(1000, 1.0);
//   pool.WriteArray(0, buf, 0, std::span<const double>(v));
//   double sum = pool.shipper().ShipAndReduce(...).value();
//
// Pool bundles the cluster, pool manager, runtime (background migrator +
// sizer), coherent region, compute shipper, and replication manager into
// one object with a small, documented surface.  Experiments that need the
// pieces individually can reach them through accessors.
#pragma once

#include <memory>
#include <optional>
#include <span>

#include "cluster/cluster.h"
#include "common/status.h"
#include "common/units.h"
#include "core/coherent_region.h"
#include "core/compute_ship.h"
#include "core/pool_manager.h"
#include "core/replication.h"
#include "core/runtime.h"

namespace lmp {

struct PoolOptions {
  cluster::ClusterConfig cluster;
  core::RuntimeConfig runtime;
  // Coherent region (§3.2): a few GBs in real deployments; default small so
  // functional tests stay cheap.  Granularity is the coherence tracking
  // unit (sub-line 16 B avoids false sharing).
  Bytes coherent_bytes = MiB(1);
  Bytes coherence_granularity = 16;
  int replication_factor = 1;

  // The paper's 4-server / 96 GB logical deployment, with real backing
  // disabled (timing experiments).
  static PoolOptions Paper();
  // A small functional configuration with real backing stores (tests,
  // examples): 4 servers x 64 MiB.
  static PoolOptions Small();
};

class Pool {
 public:
  static StatusOr<std::unique_ptr<Pool>> Create(const PoolOptions& options);

  // Allocation ----------------------------------------------------------------
  StatusOr<core::BufferId> Allocate(
      Bytes bytes, std::optional<cluster::ServerId> preferred = {});
  Status Free(core::BufferId buffer);

  // Typed data plane (requires backing; Small() has it) -----------------------
  template <typename T>
  Status WriteArray(cluster::ServerId from, core::BufferId buffer,
                    Bytes offset, std::span<const T> values,
                    SimTime now = 0) {
    return manager_->Write(from, buffer, offset,
                           std::as_bytes(values), now);
  }
  template <typename T>
  Status ReadArray(cluster::ServerId from, core::BufferId buffer,
                   Bytes offset, std::span<T> out, SimTime now = 0) {
    return manager_->Read(from, buffer, offset,
                          std::as_writable_bytes(out), now);
  }

  // Background tasks ------------------------------------------------------------
  std::vector<core::MigrationRecord> Tick(SimTime now) {
    return runtime_->Tick(now);
  }

  // Components -------------------------------------------------------------------
  cluster::Cluster& cluster() { return *cluster_; }
  core::PoolManager& manager() { return *manager_; }
  core::LmpRuntime& runtime() { return *runtime_; }
  core::CoherentRegion& coherent() { return *coherent_; }
  core::ComputeShipper& shipper() { return *shipper_; }
  core::ReplicationManager& replication() { return *replication_; }

 private:
  explicit Pool(const PoolOptions& options);

  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<core::PoolManager> manager_;
  std::unique_ptr<core::LmpRuntime> runtime_;
  std::unique_ptr<core::CoherentRegion> coherent_;
  std::unique_ptr<core::ComputeShipper> shipper_;
  std::unique_ptr<core::ReplicationManager> replication_;
};

}  // namespace lmp
