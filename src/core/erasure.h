// XOR erasure coding — the lower-overhead alternative to replication for
// failure masking (§5 "Failure domains"; the paper cites Carbink's
// erasure-coded far memory).
//
// Segments are grouped k-at-a-time; each group gets one parity segment,
// XOR of the members, placed on a server hosting none of them.  Capacity
// overhead is 1/k instead of replication's 1x, at the cost of a
// reconstruction read of k-1 members + parity on failure.  A group
// tolerates one member (or parity) loss.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/pool_manager.h"

namespace lmp::core {

class XorErasureManager {
 public:
  // group_size = k data segments per parity segment (k >= 2).
  XorErasureManager(PoolManager* manager, int group_size = 3);

  // Groups the buffer's segments and materialises parity.  Requires the
  // segments in one group to have equal sizes (the allocator's placement
  // chunks generally differ, so callers protect per-buffer stripes; groups
  // are padded conceptually by treating the XOR over the common prefix —
  // we require equal sizes and report kInvalidArgument otherwise for
  // simplicity and test determinism).
  Status ProtectSegments(const std::vector<SegmentId>& segments);

  // Reconstructs a lost segment from its surviving group members, homing it
  // on a live server with capacity.  The logical address is preserved and
  // the segment returns to kActive.
  Status RecoverSegment(SegmentId seg);

  // Recovers every lost protected segment; returns how many were rebuilt.
  StatusOr<int> RecoverAllLost();

  double CapacityOverhead() const {
    return 1.0 + 1.0 / static_cast<double>(group_size_);
  }
  int group_size() const { return group_size_; }

 private:
  struct Group {
    std::vector<SegmentId> members;
    SegmentId parity = kInvalidSegment;  // parity segment id
    Bytes size = 0;
  };

  // Strict placement avoids every server hosting a group member or the
  // parity.  During recovery on small clusters no such server may exist;
  // `allow_parity_colocation` then permits sharing a server with the
  // parity (members never co-locate — that would make one crash a double
  // loss).  The resulting group is still readable but only single-fault
  // tolerant until rebalanced.
  StatusOr<cluster::ServerId> PickHost(const Group& group, Bytes size,
                                       bool allow_parity_colocation) const;
  Status XorInto(std::vector<std::byte>& acc, SegmentId seg);
  const Group* GroupOf(SegmentId seg) const;

  PoolManager* manager_;
  int group_size_;
  std::vector<Group> groups_;
  SegmentId next_parity_id_ = (1u << 23);  // high id space for parity
};

}  // namespace lmp::core
