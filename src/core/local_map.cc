#include "core/local_map.h"

#include <algorithm>

namespace lmp::core {

Status LocalFrameMap::Bind(SegmentId id, Bytes size,
                           std::vector<mem::FrameRun> runs) {
  if (map_.contains(id)) {
    return AlreadyExistsError("segment already bound");
  }
  Bytes covered = 0;
  for (const auto& r : runs) covered += r.count * frame_size_;
  if (covered < size) {
    return InvalidArgumentError("frame runs do not cover segment size");
  }
  map_[id] = Binding{size, std::move(runs)};
  return Status::Ok();
}

Status LocalFrameMap::Unbind(SegmentId id) {
  if (map_.erase(id) == 0) return NotFoundError("segment not bound");
  return Status::Ok();
}

StatusOr<std::vector<PhysicalExtent>> LocalFrameMap::Resolve(
    SegmentId id, Bytes offset, Bytes len) const {
  auto it = map_.find(id);
  if (it == map_.end()) return NotFoundError("segment not bound here");
  const Binding& b = it->second;
  if (offset + len > b.size) {
    return InvalidArgumentError("range exceeds segment size");
  }

  std::vector<PhysicalExtent> extents;
  Bytes remaining = len;
  Bytes pos = offset;  // byte position within the segment
  // Walk the runs to find the one containing `pos`, then emit extents.
  Bytes run_start = 0;  // segment-relative start of the current run
  for (const auto& run : b.runs) {
    const Bytes run_bytes = run.count * frame_size_;
    if (remaining == 0) break;
    if (pos >= run_start + run_bytes) {
      run_start += run_bytes;
      continue;
    }
    const Bytes within = pos - run_start;
    const Bytes avail = run_bytes - within;
    const Bytes take = std::min(remaining, avail);
    extents.push_back(PhysicalExtent{
        run.first + within / frame_size_,
        within % frame_size_,
        take,
    });
    pos += take;
    remaining -= take;
    run_start += run_bytes;
  }
  if (remaining != 0) {
    return InternalError("frame runs shorter than bound size");
  }
  return extents;
}

StatusOr<std::vector<mem::FrameRun>> LocalFrameMap::RunsOf(
    SegmentId id) const {
  auto it = map_.find(id);
  if (it == map_.end()) return NotFoundError("segment not bound here");
  return it->second.runs;
}

}  // namespace lmp::core
