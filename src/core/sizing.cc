#include "core/sizing.h"

#include <algorithm>

#include "common/logging.h"

namespace lmp::core {

double SizingPlan::LocalFraction() const {
  Bytes local = 0, total = 0;
  for (const auto& e : entries) {
    local += e.expected_local;
    total += e.expected_local + e.expected_remote;
  }
  return total == 0 ? 1.0 : static_cast<double>(local) /
                                static_cast<double>(total);
}

SizingPlan SizingOptimizer::Solve(const cluster::Cluster& cluster,
                                  std::vector<ServerDemand> demands) {
  SizingPlan plan;

  struct Work {
    ServerDemand demand;
    Bytes total = 0;      // server DRAM
    Bytes floor = 0;      // private reservation
    Bytes shared = 0;     // decided shared size
    Bytes local_served = 0;
    Bytes remote_served = 0;
    Bytes overflow = 0;   // demand not yet placed
  };
  std::vector<Work> work;
  for (const ServerDemand& d : demands) {
    Work w;
    w.demand = d;
    w.total = cluster.server(d.server).total_memory();
    w.floor = std::min(d.private_demand, w.total);
    work.push_back(w);
  }

  // Step 2: self-serve pool demand out of the server's own slack.
  for (Work& w : work) {
    const Bytes slack = w.total - w.floor;
    w.local_served = std::min(w.demand.pool_demand, slack);
    w.shared = w.local_served;
    w.overflow = w.demand.pool_demand - w.local_served;
  }

  // Step 3: place overflow, highest priority first.
  std::vector<std::size_t> order(work.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return work[a].demand.priority > work[b].demand.priority;
                   });

  for (std::size_t oi : order) {
    Work& w = work[oi];
    while (w.overflow > 0) {
      // Peer with the most remaining slack.
      Work* best = nullptr;
      for (Work& peer : work) {
        if (&peer == &w) continue;
        const Bytes slack = peer.total - peer.floor - peer.shared;
        if (slack == 0) continue;
        if (best == nullptr ||
            slack > best->total - best->floor - best->shared) {
          best = &peer;
        }
      }
      if (best == nullptr) break;  // no slack anywhere
      const Bytes slack = best->total - best->floor - best->shared;
      const Bytes take = std::min(w.overflow, slack);
      best->shared += take;
      w.remote_served += take;
      w.overflow -= take;
    }
    plan.unmet_demand += w.overflow;  // step 4: shed
  }

  for (const Work& w : work) {
    plan.entries.push_back(SizingPlan::Entry{
        w.demand.server, w.shared, w.local_served, w.remote_served});
  }
  return plan;
}

SizingApplyResult SizingOptimizer::Apply(cluster::Cluster& cluster,
                                         const SizingPlan& plan) {
  SizingApplyResult result;
  for (const auto& e : plan.entries) {
    auto& srv = cluster.server(e.server);
    if (srv.crashed()) {
      result.deferred.push_back(SizingApplyResult::DeferredShrink{
          e.server, srv.shared_bytes(), e.shared_bytes, 0, /*crashed=*/true});
      continue;
    }
    const Status st = srv.ResizeShared(e.shared_bytes);
    if (!st.ok()) {
      // Shrink blocked by live frames: leave as-is and report the stranded
      // bytes so the control plane can drain them and retry.
      const std::uint64_t target_frames =
          mem::FramesForBytes(e.shared_bytes, srv.frame_size());
      const Bytes stranded =
          srv.shared_allocator().AllocatedFramesFrom(target_frames) *
          srv.frame_size();
      result.deferred.push_back(SizingApplyResult::DeferredShrink{
          e.server, srv.shared_bytes(), e.shared_bytes, stranded,
          /*crashed=*/false});
      continue;
    }
    ++result.applied;
  }
  return result;
}

}  // namespace lmp::core
