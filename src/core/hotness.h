// Access-hotness tracking (§5 "Locality balancing").
//
// The paper notes NUMA-style page-fault sampling is too slow for an LMP and
// proposes profiling accesses with performance counters / access bits.  We
// model that profile: per (segment, accessing-server) byte counters with
// exponential decay, so the migration policy sees *recent* traffic.  The
// decay is applied lazily on read using a configurable half-life in
// simulated time.
#pragma once

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cluster/server.h"
#include "common/units.h"
#include "core/logical_address.h"

namespace lmp::core {

class AccessTracker {
 public:
  explicit AccessTracker(SimTime half_life = Milliseconds(100))
      : half_life_(half_life) {}

  // The decay half-life should be a few times the workload's reuse
  // interval; experiments tune it to their epoch length.
  void set_half_life(SimTime half_life) { half_life_ = half_life; }
  SimTime half_life() const { return half_life_; }

  void RecordAccess(SegmentId seg, cluster::ServerId from, double bytes,
                    SimTime now);

  // Decayed bytes accessed by `from` on `seg`, as of `now`.
  double AccessedBytes(SegmentId seg, cluster::ServerId from,
                       SimTime now) const;

  // Total decayed bytes on `seg` across all servers.
  double TotalBytes(SegmentId seg, SimTime now) const;

  // The server with the highest decayed traffic on `seg`, and its share of
  // the total.  Returns false if the segment has no recorded traffic.
  struct DominantAccessor {
    cluster::ServerId server = 0;
    double share = 0.0;   // fraction of total traffic
    double bytes = 0.0;
  };
  bool Dominant(SegmentId seg, SimTime now, DominantAccessor* out) const;

  void Forget(SegmentId seg);
  void Clear() { table_.clear(); }

  std::size_t tracked_segments() const { return table_.size(); }

 private:
  struct Counter {
    double bytes = 0;
    SimTime updated = 0;
  };

  double Decayed(const Counter& c, SimTime now) const {
    if (c.bytes == 0) return 0;
    const SimTime dt = now - c.updated;
    if (dt <= 0) return c.bytes;
    return c.bytes * std::exp2(-dt / half_life_);
  }

  SimTime half_life_;
  std::unordered_map<SegmentId,
                     std::unordered_map<cluster::ServerId, Counter>>
      table_;
};

}  // namespace lmp::core
