#include "core/translation.h"

#include "common/logging.h"

namespace lmp::core {

TranslationCache::TranslationCache(std::size_t capacity)
    : capacity_(capacity) {
  LMP_CHECK(capacity > 0);
}

std::optional<TranslationCache::Entry> TranslationCache::Lookup(
    SegmentId id) {
  auto it = map_.find(id);
  if (it == map_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void TranslationCache::Insert(SegmentId id, Entry entry) {
  auto it = map_.find(id);
  if (it != map_.end()) {
    it->second->second = entry;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
  }
  lru_.emplace_front(id, entry);
  map_[id] = lru_.begin();
}

void TranslationCache::Invalidate(SegmentId id) {
  auto it = map_.find(id);
  if (it == map_.end()) return;
  lru_.erase(it->second);
  map_.erase(it);
}

void TranslationCache::Clear() {
  lru_.clear();
  map_.clear();
}

AddressTranslator::AddressTranslator(const SegmentMap* map,
                                     std::size_t cache_capacity)
    : map_(map), cache_(cache_capacity) {
  LMP_CHECK(map != nullptr);
}

StatusOr<Location> AddressTranslator::TranslateHome(SegmentId id) {
  const SegmentInfo* info = map_->Find(id);
  if (info == nullptr) {
    cache_.Invalidate(id);
    return NotFoundError("segment " + std::to_string(id));
  }

  if (auto cached = cache_.Lookup(id)) {
    if (cached->generation == info->generation) {
      ++stats_.hits;
      return cached->home;
    }
    ++stats_.stale_hits;
    cache_.Invalidate(id);
  } else {
    ++stats_.misses;
  }

  cache_.Insert(id, TranslationCache::Entry{info->home, info->generation});
  return info->home;
}

}  // namespace lmp::core
