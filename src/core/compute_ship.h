// Compute shipping (§4.4 "Near-memory Computing").
//
// Instead of pulling pool data across the fabric, an LMP can ship the
// computation to the servers that host the data — every access becomes
// local, using CPUs the servers already have (the paper's argument for why
// logical pools get near-memory computing "for free" while physical pools
// would need extra hardware in the box).
//
// ComputeShipper plans a buffer-range computation by home server and, when
// backing stores exist, executes it: each sub-task reads only spans that
// are local to its server.  The plan (per-server byte counts) is exactly
// what the near-memory bench feeds the fluid simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "core/pool_manager.h"

namespace lmp::core {

struct ShipPlan {
  struct SubTask {
    cluster::ServerId server = 0;
    Bytes bytes = 0;  // all local to `server`
    std::vector<std::pair<Bytes, Bytes>> ranges;  // (buffer offset, len)
  };
  std::vector<SubTask> subtasks;
  Bytes total_bytes = 0;

  // Bytes the requesting server would have pulled remotely without
  // shipping (for the shipped-vs-pulled comparison).
  Bytes remote_bytes_unshipped = 0;
};

class ComputeShipper {
 public:
  explicit ComputeShipper(PoolManager* manager);

  // Splits [offset, offset+len) of `buffer` by home server.
  StatusOr<ShipPlan> Plan(BufferId buffer, Bytes offset, Bytes len,
                          cluster::ServerId requester) const;

  // Functional map-reduce: `map` runs once per contiguous local chunk *at
  // the owning server* (accesses are recorded as local in the hotness
  // profile); results are summed.  Requires backing stores.
  // Arguments: hosting server, the chunk's offset within the buffer, and
  // the chunk bytes.  Chunks may arrive out of buffer order (grouped by
  // hosting server) — use the offset, not arrival order, for positioning.
  using MapFn = std::function<double(cluster::ServerId host,
                                     Bytes buffer_offset,
                                     std::span<const std::byte> chunk)>;
  StatusOr<double> ShipAndReduce(BufferId buffer, Bytes offset, Bytes len,
                                 const MapFn& map, SimTime now = 0) const;

 private:
  PoolManager* manager_;
};

}  // namespace lmp::core
