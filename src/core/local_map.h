// LocalFrameMap — translation step 2 (§5 "Address translation").
//
// Per-server fine-grained map from (segment, offset) to physical frames in
// that server's shared region.  Only the owning server consults it, so it
// can be as fine-grained as needed without any remote traffic — the core of
// the paper's two-step translation argument.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "core/logical_address.h"
#include "mem/frame_allocator.h"

namespace lmp::core {

struct PhysicalExtent {
  mem::FrameNumber frame = 0;  // first frame
  Bytes offset_in_frame = 0;
  Bytes length = 0;
};

class LocalFrameMap {
 public:
  explicit LocalFrameMap(Bytes frame_size) : frame_size_(frame_size) {}

  // Binds a segment to frame runs (in order).  The runs must cover `size`.
  Status Bind(SegmentId id, Bytes size, std::vector<mem::FrameRun> runs);

  Status Unbind(SegmentId id);

  bool Contains(SegmentId id) const { return map_.contains(id); }

  // Step-2 resolution: the physical extents covering [offset, offset+len).
  // Extents never span frame-run boundaries.
  StatusOr<std::vector<PhysicalExtent>> Resolve(SegmentId id, Bytes offset,
                                                Bytes len) const;

  // Frame runs backing a segment (migration source / free on unbind).
  StatusOr<std::vector<mem::FrameRun>> RunsOf(SegmentId id) const;

  Bytes frame_size() const { return frame_size_; }
  std::size_t segment_count() const { return map_.size(); }

 private:
  struct Binding {
    Bytes size = 0;
    std::vector<mem::FrameRun> runs;
  };

  Bytes frame_size_;
  std::unordered_map<SegmentId, Binding> map_;
};

}  // namespace lmp::core
