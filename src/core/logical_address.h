// Logical addresses: the pool-global address space (§3.2, §5).
//
// A logical address names a byte in the pool independently of which server
// currently hosts it, so buffers can migrate without invalidating pointers
// held by other servers ("migrating a buffer should not invalidate its
// address").  The 64-bit space is split segment/offset:
//
//    63            40 39                      0
//   +----------------+-------------------------+
//   |  segment id    |   offset within segment |
//   +----------------+-------------------------+
//
// 2^24 segments of up to 1 TiB each — comfortably covers the paper's
// "10–100 TB of shared memory" vision.  The segment is the unit of
// placement, migration, and replication; translation step 1 maps segment →
// server via a coarse, globally replicated map, and step 2 resolves the
// offset to frames inside the owning server.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace lmp::core {

using SegmentId = std::uint32_t;

inline constexpr int kOffsetBits = 40;
inline constexpr std::uint64_t kMaxSegmentSize = 1ull << kOffsetBits;
inline constexpr SegmentId kMaxSegmentId = (1u << 24) - 1;
inline constexpr SegmentId kInvalidSegment = kMaxSegmentId;

class LogicalAddress {
 public:
  constexpr LogicalAddress() = default;
  constexpr LogicalAddress(SegmentId segment, std::uint64_t offset)
      : raw_((static_cast<std::uint64_t>(segment) << kOffsetBits) |
             (offset & (kMaxSegmentSize - 1))) {}

  static constexpr LogicalAddress FromRaw(std::uint64_t raw) {
    LogicalAddress a;
    a.raw_ = raw;
    return a;
  }

  constexpr SegmentId segment() const {
    return static_cast<SegmentId>(raw_ >> kOffsetBits);
  }
  constexpr std::uint64_t offset() const {
    return raw_ & (kMaxSegmentSize - 1);
  }
  constexpr std::uint64_t raw() const { return raw_; }

  constexpr LogicalAddress operator+(std::uint64_t delta) const {
    return LogicalAddress(segment(), offset() + delta);
  }

  friend constexpr auto operator<=>(LogicalAddress a, LogicalAddress b) =
      default;

  std::string ToString() const {
    return "seg" + std::to_string(segment()) + "+" + std::to_string(offset());
  }

 private:
  std::uint64_t raw_ = ~0ull;
};

}  // namespace lmp::core

template <>
struct std::hash<lmp::core::LogicalAddress> {
  std::size_t operator()(lmp::core::LogicalAddress a) const noexcept {
    return std::hash<std::uint64_t>{}(a.raw());
  }
};
