#include "core/coherence.h"

#include <bit>

#include "common/logging.h"

namespace lmp::core {

CoherenceDirectory::CoherenceDirectory(Bytes region_size, Bytes granularity,
                                       int num_hosts)
    : region_size_(region_size),
      granularity_(granularity),
      num_hosts_(num_hosts) {
  LMP_CHECK(granularity > 0 && region_size % granularity == 0)
      << "granularity must divide region size";
  LMP_CHECK(num_hosts > 0 && num_hosts <= 64);
  blocks_.resize(region_size / granularity);
}

Status CoherenceDirectory::CheckRange(int host, Bytes offset,
                                      Bytes len) const {
  if (host < 0 || host >= num_hosts_) {
    return InvalidArgumentError("bad host id");
  }
  if (len == 0) return InvalidArgumentError("zero-length access");
  if (offset + len > region_size_) {
    return InvalidArgumentError("access beyond coherent region");
  }
  return Status::Ok();
}

StatusOr<int> CoherenceDirectory::AcquireShared(int host, Bytes offset,
                                                Bytes len) {
  LMP_RETURN_IF_ERROR(CheckRange(host, offset, len));
  ++stats_.shared_acquires;
  const std::uint64_t mask = 1ull << host;
  int messages = 0;
  const Bytes first = offset / granularity_;
  const Bytes last = (offset + len - 1) / granularity_;
  for (Bytes b = first; b <= last; ++b) {
    Block& blk = blocks_[b];
    switch (blk.state) {
      case BlockState::kModified:
        if (blk.owner == host) {
          ++stats_.hits;
          break;  // owner reads its own dirty copy
        }
        // Downgrade the owner to Shared, fill the requester.
        ++stats_.downgrade_msgs;
        ++stats_.fills;
        messages += 2;
        blk.sharers = (1ull << blk.owner) | mask;
        blk.owner = -1;
        blk.state = BlockState::kShared;
        break;
      case BlockState::kShared:
        if (blk.sharers & mask) {
          ++stats_.hits;
        } else {
          ++stats_.fills;
          ++messages;
          blk.sharers |= mask;
        }
        break;
      case BlockState::kInvalid:
        ++stats_.fills;
        ++messages;
        blk.sharers = mask;
        blk.state = BlockState::kShared;
        break;
    }
  }
  return messages;
}

StatusOr<int> CoherenceDirectory::AcquireExclusive(int host, Bytes offset,
                                                   Bytes len) {
  LMP_RETURN_IF_ERROR(CheckRange(host, offset, len));
  ++stats_.exclusive_acquires;
  const std::uint64_t mask = 1ull << host;
  int messages = 0;
  const Bytes first = offset / granularity_;
  const Bytes last = (offset + len - 1) / granularity_;
  for (Bytes b = first; b <= last; ++b) {
    Block& blk = blocks_[b];
    switch (blk.state) {
      case BlockState::kModified:
        if (blk.owner == host) {
          ++stats_.hits;
          break;
        }
        // Invalidate the current owner (with writeback) and fill.
        ++stats_.invalidation_msgs;
        ++stats_.fills;
        messages += 2;
        blk.owner = host;
        blk.sharers = 0;
        break;
      case BlockState::kShared: {
        // Invalidate every other sharer.
        const std::uint64_t others = blk.sharers & ~mask;
        const int count = std::popcount(others);
        stats_.invalidation_msgs += count;
        messages += count;
        if (!(blk.sharers & mask)) {
          ++stats_.fills;
          ++messages;
        } else {
          ++stats_.hits;
        }
        blk.sharers = 0;
        blk.owner = host;
        blk.state = BlockState::kModified;
        break;
      }
      case BlockState::kInvalid:
        ++stats_.fills;
        ++messages;
        blk.owner = host;
        blk.sharers = 0;
        blk.state = BlockState::kModified;
        break;
    }
  }
  return messages;
}

void CoherenceDirectory::ReleaseHost(int host) {
  const std::uint64_t mask = 1ull << host;
  for (Block& blk : blocks_) {
    if (blk.state == BlockState::kModified && blk.owner == host) {
      ++stats_.downgrade_msgs;  // writeback
      blk.state = BlockState::kInvalid;
      blk.owner = -1;
      blk.sharers = 0;
    } else if (blk.state == BlockState::kShared && (blk.sharers & mask)) {
      blk.sharers &= ~mask;
      if (blk.sharers == 0) blk.state = BlockState::kInvalid;
    }
  }
}

BlockState CoherenceDirectory::StateOf(int host, Bytes offset) const {
  const Block& blk = blocks_[offset / granularity_];
  if (blk.state == BlockState::kModified) {
    return blk.owner == host ? BlockState::kModified : BlockState::kInvalid;
  }
  if (blk.state == BlockState::kShared && (blk.sharers & (1ull << host))) {
    return BlockState::kShared;
  }
  return BlockState::kInvalid;
}

int CoherenceDirectory::SharerCount(Bytes offset) const {
  const Block& blk = blocks_[offset / granularity_];
  if (blk.state == BlockState::kModified) return 1;
  return std::popcount(blk.sharers);
}

}  // namespace lmp::core
