#include "core/map_replication.h"

#include "common/logging.h"

namespace lmp::core {

Status MapAuthority::Insert(const SegmentInfo& info) {
  LMP_RETURN_IF_ERROR(map_.Insert(info));
  MapDelta delta;
  delta.kind = MapDelta::Kind::kInsert;
  delta.segment = info.id;
  delta.size = info.size;
  delta.home = info.home;
  delta.generation = info.generation;
  delta.sequence = next_sequence_++;
  log_.push_back(delta);
  return Status::Ok();
}

Status MapAuthority::Rehome(SegmentId segment, Location new_home) {
  LMP_RETURN_IF_ERROR(map_.UpdateHome(segment, new_home));
  MapDelta delta;
  delta.kind = MapDelta::Kind::kRehome;
  delta.segment = segment;
  delta.home = new_home;
  delta.generation = map_.Find(segment)->generation;
  delta.sequence = next_sequence_++;
  log_.push_back(delta);
  return Status::Ok();
}

Status MapAuthority::Remove(SegmentId segment) {
  LMP_RETURN_IF_ERROR(map_.Remove(segment));
  MapDelta delta;
  delta.kind = MapDelta::Kind::kRemove;
  delta.segment = segment;
  delta.sequence = next_sequence_++;
  log_.push_back(delta);
  return Status::Ok();
}

std::vector<MapDelta> MapAuthority::DeltasSince(std::uint64_t from) const {
  std::vector<MapDelta> out;
  if (from >= next_sequence_) return out;
  out.assign(log_.begin() + static_cast<std::ptrdiff_t>(from), log_.end());
  return out;
}

Bytes MapAuthority::SyncCost(std::uint64_t from) const {
  const std::uint64_t missing =
      from >= next_sequence_ ? 0 : next_sequence_ - from;
  return missing * MapDelta::kWireBytes;
}

MapReplica::MapReplica(const MapAuthority* authority)
    : authority_(authority) {
  LMP_CHECK(authority != nullptr);
}

StatusOr<int> MapReplica::Sync() {
  const auto deltas = authority_->DeltasSince(applied_);
  for (const MapDelta& delta : deltas) {
    switch (delta.kind) {
      case MapDelta::Kind::kInsert: {
        SegmentInfo info;
        info.id = delta.segment;
        info.size = delta.size;
        info.home = delta.home;
        info.generation = delta.generation;
        LMP_RETURN_IF_ERROR(map_.Insert(info));
        break;
      }
      case MapDelta::Kind::kRehome: {
        LMP_RETURN_IF_ERROR(map_.UpdateHome(delta.segment, delta.home));
        // Adopt the authority's generation exactly (UpdateHome bumped it
        // by one, which matches a single step; multi-step gaps are set
        // explicitly to stay convergent).
        SegmentInfo* info = map_.FindMutable(delta.segment);
        LMP_CHECK(info != nullptr);
        info->generation = delta.generation;
        break;
      }
      case MapDelta::Kind::kRemove:
        LMP_RETURN_IF_ERROR(map_.Remove(delta.segment));
        break;
    }
    applied_ = delta.sequence + 1;
  }
  return static_cast<int>(deltas.size());
}

StatusOr<Location> MapReplica::Lookup(SegmentId segment) const {
  return map_.Lookup(segment);
}

const SegmentInfo* MapReplica::Find(SegmentId segment) const {
  return map_.Find(segment);
}

bool MapReplica::IsCurrent() const {
  return applied_ == authority_->log_head();
}

bool MapReplica::Validate(SegmentId segment, std::uint64_t generation) {
  const SegmentInfo* truth = authority_->map().Find(segment);
  if (truth != nullptr && truth->generation == generation) return true;
  ++stale_lookups_;
  return false;
}

}  // namespace lmp::core
