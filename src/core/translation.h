// AddressTranslator: the per-server translation path, with a TLB-like cache.
//
// Translation is two-step (§5): step 1 maps a segment to its home via the
// globally replicated coarse SegmentMap (a local lookup — the map is small
// enough to replicate everywhere); step 2 resolves offsets inside the home
// server via its LocalFrameMap.  The translator caches step-1 results and
// validates them by generation, so migrations invalidate stale entries
// lazily instead of requiring synchronous shootdowns.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "common/status.h"
#include "core/segment.h"
#include "core/segment_map.h"

namespace lmp::core {

struct TranslationStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stale_hits = 0;  // cached entry invalidated by generation

  double HitRate() const {
    const auto total = hits + misses + stale_hits;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

// LRU cache of segment -> (home, generation).
class TranslationCache {
 public:
  explicit TranslationCache(std::size_t capacity);

  struct Entry {
    Location home;
    std::uint64_t generation = 0;
  };

  std::optional<Entry> Lookup(SegmentId id);
  void Insert(SegmentId id, Entry entry);
  void Invalidate(SegmentId id);
  void Clear();

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::list<std::pair<SegmentId, Entry>> lru_;
  std::unordered_map<SegmentId,
                     std::list<std::pair<SegmentId, Entry>>::iterator>
      map_;
};

class AddressTranslator {
 public:
  // `map` is the (conceptually replicated) global segment map; must outlive
  // the translator.
  AddressTranslator(const SegmentMap* map, std::size_t cache_capacity = 4096);

  // Step 1, with caching.  Returns the segment's current home.
  StatusOr<Location> TranslateHome(SegmentId id);

  // Full translation of a logical range: home plus, via the provided local
  // map of that home, the physical extents.  Used by the pool manager.
  StatusOr<Location> TranslateHome(LogicalAddress addr) {
    return TranslateHome(addr.segment());
  }

  const TranslationStats& stats() const { return stats_; }
  void ResetStats() { stats_ = TranslationStats{}; }
  TranslationCache& cache() { return cache_; }

 private:
  const SegmentMap* map_;
  TranslationCache cache_;
  TranslationStats stats_;
};

}  // namespace lmp::core
