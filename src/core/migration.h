// MigrationEngine — locality balancing (§5).
//
// The paper's challenge: NUMA balancing unmaps pages to sample accesses,
// which is too slow for an LMP; instead accesses are profiled (our
// AccessTracker stands in for performance counters / access bits) and a
// policy periodically migrates hot remote segments toward their dominant
// accessor.  Migration is worthwhile when the recent remote traffic a move
// would convert to local traffic exceeds the one-time copy cost by a
// configurable factor.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "core/pool_manager.h"

namespace lmp::core {

struct MigrationConfig {
  // A segment is a candidate only when one server generates at least this
  // share of its recent traffic...
  double dominance_threshold = 0.55;
  // ...and that traffic (decayed bytes) exceeds the copy cost by this
  // factor.  >1 means "the move pays for itself within one half-life".
  double benefit_factor = 1.0;
  // Cap per balancing round, so one round cannot saturate the fabric.
  int max_migrations_per_round = 8;
  // Rack scope: when scope_limit > scope_first, a round only moves
  // segments whose dominant accessor AND current home both fall in
  // [scope_first, scope_limit) — rack-local balancing that never crosses
  // the spine.  Cross-rack moves are the hierarchical coordinator's to
  // grant, not the balancer's to take.  Default (0, 0) is unscoped.
  cluster::ServerId scope_first = 0;
  cluster::ServerId scope_limit = 0;
};

struct MigrationRoundStats {
  int candidates = 0;
  int migrated = 0;
  int skipped_capacity = 0;
  Bytes bytes_moved = 0;
};

class MigrationEngine {
 public:
  MigrationEngine(PoolManager* manager, MigrationConfig config = {});

  // One balancing round at simulated time `now`.  Appends executed
  // migrations to `records` (optional) and returns round statistics.
  // Capacity misses and busy segments are counted, not errors; anything
  // else (a corrupt segment map, a crashed destination) propagates.
  StatusOr<MigrationRoundStats> RunOnce(
      SimTime now, std::vector<MigrationRecord>* records = nullptr);

  const MigrationConfig& config() const { return config_; }

 private:
  PoolManager* manager_;
  MigrationConfig config_;
};

}  // namespace lmp::core
