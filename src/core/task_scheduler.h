// TaskScheduler: the execution half of computation shipping (§4.4 — "a
// more sophisticated runtime").
//
// ComputeShipper decides WHERE sub-tasks run; this scheduler models their
// EXECUTION on the fluid simulator: each server exposes one slot per core,
// a task occupies a slot, streams its input from the server's local DRAM
// (a simulator flow on that core's path), then spends its compute time (a
// timer).  Queued tasks start as slots free, so makespans reflect real
// contention between shipped work and whatever else the cores do.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "core/compute_ship.h"
#include "fabric/topology.h"
#include "sim/fluid.h"

namespace lmp::core {

struct ComputeTask {
  cluster::ServerId target = 0;  // server that executes the task
  double input_bytes = 0;        // streamed from the target's local DRAM
  SimTime compute_ns = 0;        // CPU time after the data arrives
};

struct SchedulerStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  SimTime makespan = 0;  // first submit -> last completion
};

class TaskScheduler {
 public:
  using DoneCallback = std::function<void(const ComputeTask&, SimTime)>;

  // `sim` and `topology` must outlive the scheduler.  Slots default to the
  // machine's core count per server.
  TaskScheduler(sim::FluidSimulator* sim, fabric::Topology* topology,
                int slots_per_server = 0);

  // Enqueues a task; it starts as soon as a slot frees on its target.
  Status Submit(ComputeTask task, DoneCallback on_done = nullptr);

  // Converts a ship plan into tasks (one per sub-task), with compute cost
  // `compute_ns_per_byte` applied to each sub-task's bytes.
  Status SubmitPlan(const ShipPlan& plan, double compute_ns_per_byte,
                    DoneCallback on_done = nullptr);

  // Runs the simulator until every submitted task has completed.
  void Drain();

  const SchedulerStats& stats() const { return stats_; }
  int BusySlots(cluster::ServerId server) const;
  std::size_t QueuedTasks(cluster::ServerId server) const;

  // Optional trace sink: each dispatched task becomes a span on a
  // (server, slot) track, from dispatch through input streaming and
  // compute to completion.  Null (the default) disables emission.
  void set_trace(trace::TraceCollector* collector) { trace_ = collector; }
  trace::TraceCollector* trace() const { return trace_; }

 private:
  struct Pending {
    ComputeTask task;
    DoneCallback on_done;
  };
  struct ServerState {
    std::deque<Pending> queue;
    std::vector<bool> slot_busy;
  };

  void TryDispatch(cluster::ServerId server);
  void RunOn(cluster::ServerId server, int slot, Pending pending);
  void Finish(cluster::ServerId server, int slot, Pending& pending);

  // Trace track id for a (server, slot) pair; offset keeps task tracks
  // clear of flow-id tracks on the same timeline.
  std::uint64_t TaskTrack(cluster::ServerId server, int slot) const;

  sim::FluidSimulator* sim_;
  fabric::Topology* topology_;
  std::vector<ServerState> servers_;
  SchedulerStats stats_;
  SimTime first_submit_ = -1;
  trace::TraceCollector* trace_ = nullptr;
};

}  // namespace lmp::core
