#include "core/placement.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace lmp::core {
namespace {

struct Candidate {
  cluster::ServerId server;
  Bytes free;
};

std::vector<Candidate> LiveCandidates(const cluster::Cluster& cluster) {
  std::vector<Candidate> out;
  for (int s = 0; s < cluster.num_servers(); ++s) {
    const auto& srv = cluster.server(static_cast<cluster::ServerId>(s));
    if (srv.crashed()) continue;
    out.push_back(Candidate{srv.id(), srv.shared_allocator().free_bytes()});
  }
  return out;
}

Bytes TotalFree(const std::vector<Candidate>& cands) {
  return std::accumulate(cands.begin(), cands.end(), Bytes{0},
                         [](Bytes acc, const Candidate& c) {
                           return acc + c.free;
                         });
}

Status CapacityError(Bytes want, Bytes have) {
  return OutOfMemoryError("pool cannot hold allocation: need " +
                          std::to_string(want / kMiB) + " MiB, free " +
                          std::to_string(have / kMiB) + " MiB");
}

}  // namespace

StatusOr<std::vector<PlacementChunk>> LocalFirstPlacement::Place(
    const cluster::Cluster& cluster, Bytes bytes,
    std::optional<cluster::ServerId> preferred) {
  std::vector<Candidate> cands = LiveCandidates(cluster);
  if (cands.empty()) return UnavailableError("no live servers");
  if (bytes > TotalFree(cands)) return CapacityError(bytes, TotalFree(cands));

  // Preferred server first, then peers with the most free space.
  std::stable_sort(cands.begin(), cands.end(),
                   [&](const Candidate& a, const Candidate& b) {
                     const bool ap = preferred && a.server == *preferred;
                     const bool bp = preferred && b.server == *preferred;
                     if (ap != bp) return ap;
                     return a.free > b.free;
                   });

  std::vector<PlacementChunk> chunks;
  Bytes remaining = bytes;
  for (const Candidate& c : cands) {
    if (remaining == 0) break;
    const Bytes take = std::min(remaining, c.free);
    if (take == 0) continue;
    chunks.push_back(PlacementChunk{c.server, take});
    remaining -= take;
  }
  LMP_CHECK(remaining == 0);
  return chunks;
}

StatusOr<std::vector<PlacementChunk>> RoundRobinPlacement::Place(
    const cluster::Cluster& cluster, Bytes bytes,
    std::optional<cluster::ServerId> /*preferred*/) {
  std::vector<Candidate> cands = LiveCandidates(cluster);
  if (cands.empty()) return UnavailableError("no live servers");
  if (bytes > TotalFree(cands)) return CapacityError(bytes, TotalFree(cands));

  // Accumulate per-server byte counts by dealing stripes in rotation,
  // skipping full servers.
  std::vector<Bytes> assigned(cands.size(), 0);
  Bytes remaining = bytes;
  std::size_t idx = cursor_ % cands.size();
  std::size_t stuck = 0;
  while (remaining > 0) {
    Candidate& c = cands[idx];
    const Bytes room = c.free - assigned[idx];
    const Bytes take = std::min({stripe_bytes_, remaining, room});
    if (take > 0) {
      assigned[idx] += take;
      remaining -= take;
      stuck = 0;
    } else if (++stuck >= cands.size()) {
      return InternalError("round-robin failed despite free capacity");
    }
    idx = (idx + 1) % cands.size();
  }
  cursor_ = static_cast<std::uint32_t>(idx);

  std::vector<PlacementChunk> chunks;
  for (std::size_t i = 0; i < cands.size(); ++i) {
    if (assigned[i] > 0) {
      chunks.push_back(PlacementChunk{cands[i].server, assigned[i]});
    }
  }
  return chunks;
}

StatusOr<std::vector<PlacementChunk>> CapacityWeightedPlacement::Place(
    const cluster::Cluster& cluster, Bytes bytes,
    std::optional<cluster::ServerId> /*preferred*/) {
  std::vector<Candidate> cands = LiveCandidates(cluster);
  if (cands.empty()) return UnavailableError("no live servers");
  const Bytes total_free = TotalFree(cands);
  if (bytes > total_free) return CapacityError(bytes, total_free);

  std::vector<PlacementChunk> chunks;
  Bytes remaining = bytes;
  for (std::size_t i = 0; i < cands.size(); ++i) {
    if (remaining == 0) break;
    Bytes take;
    if (i + 1 == cands.size()) {
      take = remaining;  // absorb rounding in the last chunk
    } else {
      take = static_cast<Bytes>(static_cast<double>(bytes) *
                                static_cast<double>(cands[i].free) /
                                static_cast<double>(total_free));
      take = std::min({take, cands[i].free, remaining});
    }
    if (take > cands[i].free) {
      return InternalError("capacity-weighted overshoot");
    }
    if (take > 0) {
      chunks.push_back(PlacementChunk{cands[i].server, take});
      remaining -= take;
    }
  }
  if (remaining > 0) {
    // Rounding left a residue; greedily top up.
    for (std::size_t i = 0; i < cands.size() && remaining > 0; ++i) {
      Bytes used = 0;
      for (const auto& ch : chunks) {
        if (ch.server == cands[i].server) used = ch.bytes;
      }
      const Bytes room = cands[i].free - used;
      const Bytes take = std::min(room, remaining);
      if (take == 0) continue;
      bool found = false;
      for (auto& ch : chunks) {
        if (ch.server == cands[i].server) {
          ch.bytes += take;
          found = true;
          break;
        }
      }
      if (!found) chunks.push_back(PlacementChunk{cands[i].server, take});
      remaining -= take;
    }
  }
  LMP_CHECK(remaining == 0);
  return chunks;
}

std::unique_ptr<PlacementPolicy> MakePlacementPolicy(std::string_view name) {
  if (name == "local-first") return std::make_unique<LocalFirstPlacement>();
  if (name == "round-robin") return std::make_unique<RoundRobinPlacement>();
  if (name == "capacity-weighted") {
    return std::make_unique<CapacityWeightedPlacement>();
  }
  return nullptr;
}

}  // namespace lmp::core
