// SegmentMap — translation step 1 (§5 "Address translation").
//
// The coarse-grained, globally replicated map from segment id to its home
// server.  The paper's key argument is that a single flat directory would
// force remote lookups on every translation; instead this map is small
// (one entry per segment, not per page) so every server can hold a full
// copy, and only *changes* (migrations) need to propagate.  The map tracks
// a version per segment so cached translations can be validated cheaply.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/segment.h"

namespace lmp::core {

class SegmentMap {
 public:
  SegmentMap() = default;

  // Registers a new segment.  Fails with kAlreadyExists on id reuse.
  Status Insert(const SegmentInfo& info);

  Status Remove(SegmentId id);

  // Step-1 lookup.  kNotFound for unregistered segments.
  StatusOr<Location> Lookup(SegmentId id) const;

  const SegmentInfo* Find(SegmentId id) const;
  SegmentInfo* FindMutable(SegmentId id);

  // Re-homes a segment (migration commit).  Bumps the generation so stale
  // cached translations become detectable.
  Status UpdateHome(SegmentId id, Location new_home);

  Status SetState(SegmentId id, SegmentState state);

  std::size_t size() const { return map_.size(); }

  // All segments currently homed at `loc` (crash handling, sizing).
  std::vector<SegmentId> SegmentsAt(const Location& loc) const;

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [id, info] : map_) fn(info);
  }

 private:
  std::unordered_map<SegmentId, SegmentInfo> map_;
};

}  // namespace lmp::core
