#include "core/erasure.h"

#include <algorithm>

#include "common/logging.h"

namespace lmp::core {
namespace {

// Reads a segment's raw bytes via its home's frame map and backing store.
// Returns false when the cluster runs without backing (timing-only mode).
bool ReadSegmentBytes(PoolManager& mgr, const SegmentInfo& info,
                      std::vector<std::byte>* out) {
  mem::BackingStore* store = mgr.BackingAt(info.home);
  if (store == nullptr) return false;
  auto runs_or = mgr.local_map(info.home).RunsOf(info.id);
  if (!runs_or.ok()) return false;
  const Bytes frame_size = store->frame_size();
  out->resize(info.size);
  Bytes pos = 0;
  for (const auto& run : runs_or.value()) {
    for (mem::FrameNumber f = run.first; f < run.end() && pos < info.size;
         ++f) {
      const Bytes take = std::min(frame_size, info.size - pos);
      auto frame = store->Frame(f);
      std::copy_n(frame.begin(), take, out->begin() + pos);
      pos += take;
    }
  }
  return pos == info.size;
}

bool WriteSegmentBytes(PoolManager& mgr, const Location& home, SegmentId seg,
                       Bytes size, std::span<const std::byte> in) {
  mem::BackingStore* store = mgr.BackingAt(home);
  if (store == nullptr) return false;
  auto runs_or = mgr.local_map(home).RunsOf(seg);
  if (!runs_or.ok()) return false;
  const Bytes frame_size = store->frame_size();
  Bytes pos = 0;
  for (const auto& run : runs_or.value()) {
    for (mem::FrameNumber f = run.first; f < run.end() && pos < size; ++f) {
      const Bytes take = std::min(frame_size, size - pos);
      auto frame = store->Frame(f);
      std::copy_n(in.begin() + pos, take, frame.begin());
      pos += take;
    }
  }
  return pos == size;
}

}  // namespace

XorErasureManager::XorErasureManager(PoolManager* manager, int group_size)
    : manager_(manager), group_size_(group_size) {
  LMP_CHECK(manager != nullptr);
  LMP_CHECK(group_size >= 2);
}

const XorErasureManager::Group* XorErasureManager::GroupOf(
    SegmentId seg) const {
  for (const Group& g : groups_) {
    if (g.parity == seg) return &g;
    for (SegmentId m : g.members) {
      if (m == seg) return &g;
    }
  }
  return nullptr;
}

StatusOr<cluster::ServerId> XorErasureManager::PickHost(
    const Group& group, Bytes size, bool allow_parity_colocation) const {
  auto& cluster = manager_->cluster();
  const SegmentMap& segs = manager_->segment_map();
  auto hosts_member = [&](cluster::ServerId id) {
    for (SegmentId m : group.members) {
      const SegmentInfo* mi = segs.Find(m);
      if (mi != nullptr && mi->state != SegmentState::kLost &&
          !mi->home.is_pool() && mi->home.server == id) {
        return true;
      }
    }
    if (!allow_parity_colocation && group.parity != kInvalidSegment) {
      const SegmentInfo* pi = segs.Find(group.parity);
      if (pi != nullptr && pi->state != SegmentState::kLost &&
          !pi->home.is_pool() && pi->home.server == id) {
        return true;
      }
    }
    return false;
  };

  bool found = false;
  cluster::ServerId best = 0;
  Bytes best_free = 0;
  for (int s = 0; s < cluster.num_servers(); ++s) {
    const auto id = static_cast<cluster::ServerId>(s);
    const auto& srv = cluster.server(id);
    if (srv.crashed() || hosts_member(id)) continue;
    const Bytes free = srv.shared_allocator().free_bytes();
    if (free < size) continue;
    if (!found || free > best_free) {
      best = id;
      best_free = free;
      found = true;
    }
  }
  if (!found) return OutOfMemoryError("no host for parity/recovery segment");
  return best;
}

Status XorErasureManager::XorInto(std::vector<std::byte>& acc,
                                  SegmentId seg) {
  const SegmentInfo* info = manager_->segment_map().Find(seg);
  if (info == nullptr) return NotFoundError("unknown segment");
  std::vector<std::byte> bytes;
  if (!ReadSegmentBytes(*manager_, *info, &bytes)) {
    return Status::Ok();  // timing-only mode: parity is metadata-only
  }
  if (acc.size() < bytes.size()) acc.resize(bytes.size(), std::byte{0});
  for (std::size_t i = 0; i < bytes.size(); ++i) acc[i] ^= bytes[i];
  return Status::Ok();
}

Status XorErasureManager::ProtectSegments(
    const std::vector<SegmentId>& segments) {
  for (std::size_t start = 0; start < segments.size();
       start += group_size_) {
    Group group;
    const std::size_t end =
        std::min(segments.size(), start + group_size_);
    Bytes size = 0;
    for (std::size_t i = start; i < end; ++i) {
      const SegmentInfo* info = manager_->segment_map().Find(segments[i]);
      if (info == nullptr) return NotFoundError("unknown segment");
      if (info->state != SegmentState::kActive) {
        return FailedPreconditionError("segment not active");
      }
      if (size == 0) {
        size = info->size;
      } else if (info->size != size) {
        return InvalidArgumentError(
            "erasure group members must have equal sizes");
      }
      group.members.push_back(segments[i]);
    }
    group.size = size;

    // Build parity = XOR of members.
    std::vector<std::byte> parity_bytes;
    for (SegmentId m : group.members) {
      LMP_RETURN_IF_ERROR(XorInto(parity_bytes, m));
    }

    LMP_ASSIGN_OR_RETURN(
        cluster::ServerId host,
        PickHost(group, size, /*allow_parity_colocation=*/false));
    const Location loc = Location::OnServer(host);
    LMP_ASSIGN_OR_RETURN(auto runs, manager_->AllocateFramesAt(loc, size));

    SegmentInfo parity;
    parity.id = next_parity_id_++;
    parity.size = size;
    parity.home = loc;
    LMP_RETURN_IF_ERROR(manager_->mutable_segment_map().Insert(parity));
    LMP_RETURN_IF_ERROR(manager_->local_map(loc).Bind(parity.id, size, runs));
    if (!parity_bytes.empty()) {
      parity_bytes.resize(size, std::byte{0});
      WriteSegmentBytes(*manager_, loc, parity.id, size, parity_bytes);
    }
    group.parity = parity.id;
    groups_.push_back(std::move(group));
  }
  return Status::Ok();
}

Status XorErasureManager::RecoverSegment(SegmentId seg) {
  const Group* group = GroupOf(seg);
  if (group == nullptr) return NotFoundError("segment not erasure-protected");
  SegmentInfo* info = manager_->mutable_segment_map().FindMutable(seg);
  if (info == nullptr) return NotFoundError("unknown segment");
  if (info->state != SegmentState::kLost) {
    return FailedPreconditionError("segment is not lost");
  }

  // Exactly one loss is recoverable; verify the rest of the group is alive.
  std::vector<SegmentId> survivors;
  for (SegmentId m : group->members) {
    if (m == seg) continue;
    const SegmentInfo* mi = manager_->segment_map().Find(m);
    if (mi == nullptr || mi->state == SegmentState::kLost) {
      return DataLossError("multiple losses in erasure group");
    }
    survivors.push_back(m);
  }
  if (group->parity != seg) {
    const SegmentInfo* pi = manager_->segment_map().Find(group->parity);
    if (pi == nullptr || pi->state == SegmentState::kLost) {
      return DataLossError("parity lost alongside member");
    }
    survivors.push_back(group->parity);
  }

  // Reconstruct = XOR of all survivors.
  std::vector<std::byte> rebuilt;
  for (SegmentId s : survivors) {
    LMP_RETURN_IF_ERROR(XorInto(rebuilt, s));
  }

  // Prefer a host with full fault independence; fall back to sharing with
  // the parity when the cluster is too small post-crash (availability over
  // redundancy — a later rebalance can restore independence).
  auto host_or = PickHost(*group, info->size,
                          /*allow_parity_colocation=*/false);
  if (!host_or.ok() && IsOutOfMemory(host_or.status())) {
    LMP_LOG(kWarning) << "erasure recovery of segment " << seg
                      << " co-locates with its parity (degraded "
                         "fault independence)";
    host_or = PickHost(*group, info->size,
                       /*allow_parity_colocation=*/true);
  }
  LMP_ASSIGN_OR_RETURN(cluster::ServerId host, std::move(host_or));
  const Location loc = Location::OnServer(host);
  LMP_ASSIGN_OR_RETURN(auto runs,
                       manager_->AllocateFramesAt(loc, info->size));
  LMP_RETURN_IF_ERROR(
      manager_->local_map(loc).Bind(seg, info->size, runs));
  if (!rebuilt.empty()) {
    rebuilt.resize(info->size, std::byte{0});
    WriteSegmentBytes(*manager_, loc, seg, info->size, rebuilt);
  }
  LMP_CHECK_OK(manager_->mutable_segment_map().UpdateHome(seg, loc));
  LMP_CHECK_OK(
      manager_->mutable_segment_map().SetState(seg, SegmentState::kActive));
  return Status::Ok();
}

StatusOr<int> XorErasureManager::RecoverAllLost() {
  int recovered = 0;
  for (const Group& g : groups_) {
    std::vector<SegmentId> all = g.members;
    all.push_back(g.parity);
    for (SegmentId s : all) {
      const SegmentInfo* info = manager_->segment_map().Find(s);
      if (info != nullptr && info->state == SegmentState::kLost) {
        LMP_RETURN_IF_ERROR(RecoverSegment(s));
        ++recovered;
      }
    }
  }
  return recovered;
}

}  // namespace lmp::core
