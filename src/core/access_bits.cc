#include "core/access_bits.h"

#include "common/logging.h"

namespace lmp::core {

AccessBitSampler::AccessBitSampler(Bytes page_size) : page_size_(page_size) {
  LMP_CHECK(page_size > 0);
}

void AccessBitSampler::OnAccess(SegmentId seg, cluster::ServerId server,
                                Bytes offset, Bytes len) {
  if (len == 0) return;
  const std::uint64_t first = offset / page_size_;
  const std::uint64_t last = (offset + len - 1) / page_size_;
  auto& bitmap = bits_[Key{seg, server}];
  if (bitmap.size() <= last) bitmap.resize(last + 1, false);
  for (std::uint64_t p = first; p <= last; ++p) bitmap[p] = true;
}

std::vector<AccessBitSampler::ScanEntry> AccessBitSampler::ScanAndClear() {
  std::vector<ScanEntry> entries;
  last_scan_.clear();
  for (auto& [key, bitmap] : bits_) {
    std::uint64_t touched = 0;
    for (std::vector<bool>::reference bit : bitmap) {
      if (bit) {
        ++touched;
        bit = false;  // the "clear" half of scan-and-clear
      }
    }
    if (touched > 0) {
      entries.push_back(ScanEntry{key.segment, key.server, touched});
      last_scan_[key] = touched;
    }
  }
  ++scans_;
  return entries;
}

double AccessBitSampler::EstimatedBytes(SegmentId seg,
                                        cluster::ServerId server) const {
  auto it = last_scan_.find(Key{seg, server});
  if (it == last_scan_.end()) return 0;
  return static_cast<double>(it->second) * static_cast<double>(page_size_);
}

bool AccessBitSampler::DominantAccessor(SegmentId seg, Dominant* out) const {
  double total = 0, best = 0;
  cluster::ServerId best_server = 0;
  for (const auto& [key, touched] : last_scan_) {
    if (key.segment != seg) continue;
    const double bytes =
        static_cast<double>(touched) * static_cast<double>(page_size_);
    total += bytes;
    if (bytes > best) {
      best = bytes;
      best_server = key.server;
    }
  }
  if (total <= 0) return false;
  out->server = best_server;
  out->share = best / total;
  out->bytes = best;
  return true;
}

}  // namespace lmp::core
