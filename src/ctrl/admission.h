// AdmissionController: tenant admission against the sizing solver's
// headroom.
//
// The paper assumes the pool serves "high-value applications" first (§5);
// a multi-tenant deployment needs the other half of that story — deciding
// whether new demand may enter at all.  A tenant asks for a Lease of
// `bytes` pool memory at a `priority`; the controller answers one of:
//
//   * ACTIVE  — headroom covers it; the lease's demand is fed to the sizer.
//   * QUEUED  — the pool is full right now but the request fits the
//               deployment; it activates when capacity frees up.
//   * rejected (kOutOfMemory) — larger than the deployment can ever serve.
//
// Under pressure a higher-priority request preempts strictly-lower-priority
// active leases (cheapest first: lowest priority, most recently admitted);
// preempted leases fall back to the queue and re-activate when room
// returns.  When capacity shrinks (a crash, a re-solve with less slack)
// ReviewLeases() applies the same rule.
//
// The controller is policy only: it never touches the cluster.  The
// SizingController folds active leases into the demand vector and refreshes
// headroom every epoch, closing the loop.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cluster/server.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/units.h"
#include "mem/frame_allocator.h"

namespace lmp::trace {
class TraceCollector;
}

namespace lmp::core {
struct AllocOptions;
}

namespace lmp::ctrl {

using LeaseId = std::uint64_t;
inline constexpr LeaseId kInvalidLease = 0;

struct TenantSpec {
  std::string name;
  Bytes bytes = 0;
  double priority = 1.0;
  // Server the tenant runs on (demand is attributed there); when absent
  // the controller picks the live server with the most free shared bytes.
  std::optional<cluster::ServerId> preferred;
  // Allocation-cohort mobility for the tenant's buffers: pinned tenants'
  // frames pack high and are never drain victims (latency-critical data
  // that must not move); mobile (the default) participates in compaction.
  mem::Mobility mobility = mem::Mobility::kMobile;
};

enum class LeaseState : std::uint8_t {
  kActive,    // demand is being served
  kQueued,    // waiting for headroom (new or preempted)
  kReleased,  // tenant gave it back
};

std::string_view LeaseStateName(LeaseState state);

struct Lease {
  LeaseId id = kInvalidLease;
  TenantSpec spec;
  LeaseState state = LeaseState::kQueued;
  cluster::ServerId server = 0;  // attribution point while active
};

struct AdmissionStats {
  std::uint64_t requests = 0;
  std::uint64_t admitted = 0;   // immediately active
  std::uint64_t queued = 0;     // parked at request time
  std::uint64_t rejected = 0;   // larger than the deployment
  std::uint64_t preempted = 0;  // active -> queued by a higher priority
  std::uint64_t promoted = 0;   // queued -> active
  std::uint64_t released = 0;
};

class AdmissionController {
 public:
  // `capacity` is the pool bytes the deployment could dedicate to leases
  // at best (live servers' DRAM minus private floors); the controller
  // refreshes it every epoch via UpdateHeadroom.
  explicit AdmissionController(Bytes capacity);

  // Admission decision.  Returns the lease (ACTIVE or QUEUED) or
  // kOutOfMemory when `spec.bytes` exceeds total capacity.
  StatusOr<Lease> RequestAdmission(const TenantSpec& spec);

  Status Release(LeaseId id);
  StatusOr<Lease> Get(LeaseId id) const;

  // Every lease ever requested (id order == arrival order), including
  // queued and released ones — callers filter on state.  The SLO ledger
  // walks this each epoch to score active tenants.
  const std::map<LeaseId, Lease>& leases() const { return leases_; }

  // Epoch refresh from the controller: `capacity` is the current best-case
  // lease capacity, `organic_demand` the estimator's non-lease demand.
  // Preempts active leases that no longer fit (lowest priority first) and
  // promotes queued leases into any remaining headroom (highest priority,
  // then arrival order).
  void UpdateHeadroom(Bytes capacity, Bytes organic_demand);

  // Active-lease demand per server, for the estimator (id order).
  std::vector<std::pair<cluster::ServerId, Bytes>> DemandByServer() const;

  // PoolManager allocation options for a lease: preferred server (the
  // active attribution point, else the spec's preference), the tenant's
  // per-cohort locus ("tenant/<name>"), mobility, and priority.  This is
  // how admission identity reaches frame placement — allocate a lease's
  // buffers with `manager.Allocate(bytes, admission.AllocOptionsFor(lease))`
  // and its frames land in a per-tenant cohort.
  core::AllocOptions AllocOptionsFor(const Lease& lease) const;

  // The server a fresh activation would be attributed to.  Injected by the
  // SizingController (it can see the cluster); identity placement
  // (preferred or server 0) when unset.
  using PlacementHint =
      std::function<cluster::ServerId(const TenantSpec& spec)>;
  void set_placement_hint(PlacementHint hint) { hint_ = std::move(hint); }

  Bytes capacity() const { return capacity_; }
  Bytes active_bytes() const;
  Bytes queued_bytes() const;
  Bytes headroom() const;  // capacity - organic - active (clamped at 0)

  const AdmissionStats& stats() const { return stats_; }

  void set_metrics(MetricsRegistry* registry);
  void set_trace(trace::TraceCollector* collector,
                 std::function<SimTime()> clock);

 private:
  bool Activate(Lease& lease);      // true when headroom covered it
  void PreemptToFit(Bytes needed, double above_priority);
  void PromoteQueued();
  void ExportGauges();
  void Emit(std::string_view what, const Lease& lease);

  Bytes capacity_;
  Bytes organic_ = 0;
  std::map<LeaseId, Lease> leases_;  // id order == arrival order
  LeaseId next_id_ = 1;
  PlacementHint hint_;
  AdmissionStats stats_;
  MetricsRegistry* metrics_ = &MetricsRegistry::Global();
  trace::TraceCollector* trace_ = nullptr;
  std::function<SimTime()> clock_;
};

}  // namespace lmp::ctrl
