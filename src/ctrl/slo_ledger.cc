#include "ctrl/slo_ledger.h"

#include <cinttypes>
#include <cstdio>

#include "common/table.h"
#include "common/trace.h"

namespace lmp::ctrl {

double SloAttainment::LocalAttainment() const {
  if (local_samples == 0) return 1.0;
  return static_cast<double>(local_met) /
         static_cast<double>(local_samples);
}

double SloAttainment::BandwidthAttainment() const {
  if (bandwidth_samples == 0) return 1.0;
  return static_cast<double>(bandwidth_met) /
         static_cast<double>(bandwidth_samples);
}

double SloAttainment::OpP99Attainment() const {
  if (op_p99_samples == 0) return 1.0;
  return static_cast<double>(op_p99_met) /
         static_cast<double>(op_p99_samples);
}

bool SloAttainment::UnavailabilityMet() const {
  return targets.max_unavailability < 0 ||
         unavailability <= targets.max_unavailability;
}

bool SloAttainment::Met() const {
  return local_met == local_samples && bandwidth_met == bandwidth_samples &&
         op_p99_met == op_p99_samples && UnavailabilityMet();
}

SloAttainment& SloLedger::entry(std::string_view tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    it = tenants_.emplace(std::string(tenant), SloAttainment{}).first;
    it->second.tenant = std::string(tenant);
  }
  return it->second;
}

void SloLedger::Register(std::string_view tenant, SloTargets targets) {
  entry(tenant).targets = targets;
}

void SloLedger::RecordLocalFraction(std::string_view tenant,
                                    double fraction) {
  SloAttainment& a = entry(tenant);
  if (a.local_samples == 0 || fraction < a.local_min) a.local_min = fraction;
  ++a.local_samples;
  a.local_sum += fraction;
  if (a.targets.local_fraction_floor <= 0 ||
      fraction >= a.targets.local_fraction_floor) {
    ++a.local_met;
  }
}

void SloLedger::RecordBandwidth(std::string_view tenant, double gbps) {
  SloAttainment& a = entry(tenant);
  if (a.bandwidth_samples == 0 || gbps < a.bandwidth_min) {
    a.bandwidth_min = gbps;
  }
  ++a.bandwidth_samples;
  a.bandwidth_sum += gbps;
  if (a.targets.min_bandwidth_gbps <= 0 ||
      gbps >= a.targets.min_bandwidth_gbps) {
    ++a.bandwidth_met;
  }
}

void SloLedger::RecordOpP99(std::string_view tenant, SimTime p99) {
  SloAttainment& a = entry(tenant);
  if (p99 > a.op_p99_worst) a.op_p99_worst = p99;
  ++a.op_p99_samples;
  a.op_p99_sum += static_cast<double>(p99);
  if (a.targets.max_op_p99 < 0 || p99 <= a.targets.max_op_p99) {
    ++a.op_p99_met;
  }
}

void SloLedger::AddUnavailability(std::string_view tenant,
                                  SimTime duration) {
  SloAttainment& a = entry(tenant);
  ++a.unavailability_windows;
  a.unavailability += duration;
}

const SloAttainment* SloLedger::Find(std::string_view tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : &it->second;
}

std::vector<SloAttainment> SloLedger::Report() const {
  std::vector<SloAttainment> out;
  out.reserve(tenants_.size());
  for (const auto& [name, a] : tenants_) out.push_back(a);
  return out;
}

std::string SloLedger::Json() const {
  char buf[32];
  const auto u64 = [&buf](std::uint64_t v) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    return std::string(buf);
  };
  std::string out = "{\"tenants\":{";
  bool first = true;
  for (const auto& [name, a] : tenants_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += trace::JsonEscape(name);
    out += "\":{\"targets\":{\"local_fraction_floor\":";
    out += trace::JsonNumber(a.targets.local_fraction_floor);
    out += ",\"min_bandwidth_gbps\":";
    out += trace::JsonNumber(a.targets.min_bandwidth_gbps);
    out += ",\"max_unavailability_ns\":";
    out += trace::JsonNumber(a.targets.max_unavailability);
    out += ",\"max_op_p99_ns\":";
    out += trace::JsonNumber(a.targets.max_op_p99);
    out += "},\"local\":{\"samples\":";
    out += u64(a.local_samples);
    out += ",\"met\":";
    out += u64(a.local_met);
    out += ",\"attainment\":";
    out += trace::JsonNumber(a.LocalAttainment());
    out += ",\"min\":";
    out += trace::JsonNumber(a.local_min);
    out += ",\"mean\":";
    out += trace::JsonNumber(
        a.local_samples == 0
            ? 0.0
            : a.local_sum / static_cast<double>(a.local_samples));
    out += "},\"bandwidth\":{\"samples\":";
    out += u64(a.bandwidth_samples);
    out += ",\"met\":";
    out += u64(a.bandwidth_met);
    out += ",\"attainment\":";
    out += trace::JsonNumber(a.BandwidthAttainment());
    out += ",\"min\":";
    out += trace::JsonNumber(a.bandwidth_min);
    out += ",\"mean\":";
    out += trace::JsonNumber(
        a.bandwidth_samples == 0
            ? 0.0
            : a.bandwidth_sum / static_cast<double>(a.bandwidth_samples));
    out += "},\"op_p99\":{\"samples\":";
    out += u64(a.op_p99_samples);
    out += ",\"met\":";
    out += u64(a.op_p99_met);
    out += ",\"attainment\":";
    out += trace::JsonNumber(a.OpP99Attainment());
    out += ",\"worst_ns\":";
    out += trace::JsonNumber(a.op_p99_worst);
    out += ",\"mean_ns\":";
    out += trace::JsonNumber(
        a.op_p99_samples == 0
            ? 0.0
            : a.op_p99_sum / static_cast<double>(a.op_p99_samples));
    out += "},\"unavailability\":{\"windows\":";
    out += u64(a.unavailability_windows);
    out += ",\"total_ns\":";
    out += trace::JsonNumber(a.unavailability);
    out += ",\"met\":";
    out += a.UnavailabilityMet() ? "true" : "false";
    out += "},\"met\":";
    out += a.Met() ? "true" : "false";
    out += '}';
  }
  out += "}}";
  return out;
}

Status SloLedger::WriteJson(const std::string& path) const {
  return trace::WriteTextFile(path, Json());
}

std::string SloLedger::ReportTable() const {
  TablePrinter table({"Tenant", "Local att.", "Local min", "BW att.",
                      "BW min GB/s", "p99 att.", "p99 worst us",
                      "Unavail ms", "Met"});
  for (const auto& [name, a] : tenants_) {
    table.AddRow({name, TablePrinter::Num(a.LocalAttainment(), 3),
                  TablePrinter::Num(a.local_min, 3),
                  TablePrinter::Num(a.BandwidthAttainment(), 3),
                  TablePrinter::Num(a.bandwidth_min, 2),
                  TablePrinter::Num(a.OpP99Attainment(), 3),
                  TablePrinter::Num(a.op_p99_worst / kNsPerUs, 2),
                  TablePrinter::Num(a.unavailability / kNsPerMs, 3),
                  a.Met() ? "yes" : "NO"});
  }
  return table.ToString();
}

}  // namespace lmp::ctrl
