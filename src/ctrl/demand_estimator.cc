#include "ctrl/demand_estimator.h"

#include <algorithm>

#include "common/logging.h"

namespace lmp::ctrl {

DemandEstimator::DemandEstimator(core::PoolManager* manager,
                                 EstimatorConfig config)
    : manager_(manager), config_(config) {
  LMP_CHECK(manager != nullptr);
  LMP_CHECK(config_.time_constant > 0);
  LMP_CHECK(config_.headroom_factor > 0);
  servers_.resize(manager_->cluster().num_servers());
  scope_limit_ = static_cast<cluster::ServerId>(servers_.size());
}

void DemandEstimator::RestrictTo(cluster::ServerId first,
                                 cluster::ServerId limit) {
  LMP_CHECK(first < limit) << "empty estimator scope";
  LMP_CHECK(limit <= servers_.size()) << "scope past cluster end";
  scope_first_ = first;
  scope_limit_ = limit;
}

DemandEstimator::PerServer& DemandEstimator::state(cluster::ServerId server) {
  LMP_CHECK(server < servers_.size()) << "unknown server " << server;
  return servers_[server];
}

void DemandEstimator::SetPrivateFloor(cluster::ServerId server, Bytes bytes) {
  state(server).private_floor = bytes;
}

void DemandEstimator::SetPriority(cluster::ServerId server, double priority) {
  state(server).priority = priority;
}

void DemandEstimator::SetLeaseDemand(cluster::ServerId server, Bytes bytes) {
  state(server).lease_demand = bytes;
}

void DemandEstimator::ClearLeaseDemands() {
  for (PerServer& s : servers_) s.lease_demand = 0;
}

bool DemandEstimator::Attribute(const core::SegmentInfo& info, SimTime now,
                                cluster::ServerId* who, double* heat) const {
  if (uses_access_bits()) {
    core::AccessBitSampler::Dominant dom;
    if (!sampler_->DominantAccessor(info.id, &dom)) return false;
    *who = dom.server;
    *heat = dom.bytes;
    return true;
  }
  core::AccessTracker::DominantAccessor dom;
  if (!manager_->access_tracker().Dominant(info.id, now, &dom)) return false;
  *who = dom.server;
  *heat = dom.bytes;
  return true;
}

std::vector<core::ServerDemand> DemandEstimator::Estimate(SimTime now) {
  // Raw attribution: each active segment's bytes go to its dominant
  // accessor (recent-traffic plurality), or to its home server when nobody
  // has touched it — an untouched allocation is still demand from whoever
  // it was placed near.  A segment another scope's server dominates is
  // skipped outright: its rack's estimator claims it, and a home-side
  // fallback here would double-count it cluster-wide.
  std::vector<double> raw(servers_.size(), 0.0);
  manager_->segment_map().ForEach([&](const core::SegmentInfo& info) {
    if (info.state == core::SegmentState::kLost) return;
    cluster::ServerId who = 0;
    double heat = 0;
    if (Attribute(info, now, &who, &heat)) {
      if (InScope(who) && who < raw.size()) {
        raw[who] += static_cast<double>(info.size);
      }
    } else if (!info.home.is_pool() && InScope(info.home.server) &&
               info.home.server < raw.size()) {
      raw[info.home.server] += static_cast<double>(info.size);
    }
  });

  std::vector<core::ServerDemand> demands;
  demands.reserve(scope_limit_ - scope_first_);
  for (cluster::ServerId s = scope_first_; s < scope_limit_; ++s) {
    PerServer& st = servers_[s];
    if (st.updated < 0) {
      st.smoothed = raw[s];
    } else {
      const SimTime dt = now - st.updated;
      if (dt > 0) {
        const double alpha = 1.0 - std::exp(-dt / config_.time_constant);
        st.smoothed += alpha * (raw[s] - st.smoothed);
      }
    }
    st.updated = now;

    // Round the smoothed estimate up to whole frames: sub-frame dither
    // would otherwise produce endless ±1-byte resize requests.
    const Bytes frame = manager_->cluster().server(s).frame_size();
    const Bytes organic =
        mem::FramesForBytes(
            static_cast<Bytes>(st.smoothed * config_.headroom_factor),
            frame) *
        frame;
    demands.push_back(core::ServerDemand{s, st.private_floor,
                                         organic + st.lease_demand,
                                         st.priority});
  }
  return demands;
}

double DemandEstimator::ObservedLocalFraction(SimTime now) const {
  const core::AccessTracker& tracker = manager_->access_tracker();
  double local = 0, total = 0;
  manager_->segment_map().ForEach([&](const core::SegmentInfo& info) {
    if (info.state == core::SegmentState::kLost) return;
    for (cluster::ServerId s = scope_first_; s < scope_limit_; ++s) {
      const double bytes = tracker.AccessedBytes(info.id, s, now);
      total += bytes;
      if (!info.home.is_pool() && info.home.server == s) local += bytes;
    }
  });
  return total == 0 ? 1.0 : local / total;
}

double DemandEstimator::ObservedLocalFraction(
    SimTime now, cluster::ServerId server) const {
  const core::AccessTracker& tracker = manager_->access_tracker();
  double local = 0, total = 0;
  manager_->segment_map().ForEach([&](const core::SegmentInfo& info) {
    if (info.state == core::SegmentState::kLost) return;
    const double bytes = tracker.AccessedBytes(info.id, server, now);
    total += bytes;
    if (!info.home.is_pool() && info.home.server == server) local += bytes;
  });
  return total == 0 ? 1.0 : local / total;
}

std::vector<DemandEstimator::PullCandidate> DemandEstimator::PullCandidates(
    SimTime now) const {
  std::vector<PullCandidate> out;
  manager_->segment_map().ForEach([&](const core::SegmentInfo& info) {
    if (info.state != core::SegmentState::kActive) return;
    // Homed on a server outside the scope; pool-homed segments are the
    // flat drain path's business, not a cross-rack pull's.
    if (info.home.is_pool() || InScope(info.home.server)) return;
    cluster::ServerId who = 0;
    double heat = 0;
    if (!Attribute(info, now, &who, &heat)) return;
    if (!InScope(who)) return;
    out.push_back(PullCandidate{info.id, who, info.size, heat});
  });
  std::sort(out.begin(), out.end(),
            [](const PullCandidate& a, const PullCandidate& b) {
              if (a.heat != b.heat) return a.heat > b.heat;
              return a.seg < b.seg;
            });
  return out;
}

Bytes DemandEstimator::RemoteHotBytes(SimTime now) const {
  Bytes sum = 0;
  for (const PullCandidate& c : PullCandidates(now)) sum += c.size;
  return sum;
}

Bytes DemandEstimator::SmoothedOrganicDemand() const {
  double sum = 0;
  for (cluster::ServerId s = scope_first_; s < scope_limit_; ++s) {
    sum += servers_[s].smoothed;
  }
  return static_cast<Bytes>(sum);
}

}  // namespace lmp::ctrl
