#include "ctrl/demand_estimator.h"

#include <algorithm>

#include "common/logging.h"

namespace lmp::ctrl {

DemandEstimator::DemandEstimator(core::PoolManager* manager,
                                 EstimatorConfig config)
    : manager_(manager), config_(config) {
  LMP_CHECK(manager != nullptr);
  LMP_CHECK(config_.time_constant > 0);
  LMP_CHECK(config_.headroom_factor > 0);
  servers_.resize(manager_->cluster().num_servers());
}

DemandEstimator::PerServer& DemandEstimator::state(cluster::ServerId server) {
  LMP_CHECK(server < servers_.size()) << "unknown server " << server;
  return servers_[server];
}

void DemandEstimator::SetPrivateFloor(cluster::ServerId server, Bytes bytes) {
  state(server).private_floor = bytes;
}

void DemandEstimator::SetPriority(cluster::ServerId server, double priority) {
  state(server).priority = priority;
}

void DemandEstimator::SetLeaseDemand(cluster::ServerId server, Bytes bytes) {
  state(server).lease_demand = bytes;
}

void DemandEstimator::ClearLeaseDemands() {
  for (PerServer& s : servers_) s.lease_demand = 0;
}

std::vector<core::ServerDemand> DemandEstimator::Estimate(SimTime now) {
  // Raw attribution: each active segment's bytes go to its dominant
  // accessor (recent-traffic plurality), or to its home server when nobody
  // has touched it — an untouched allocation is still demand from whoever
  // it was placed near.
  std::vector<double> raw(servers_.size(), 0.0);
  const core::AccessTracker& tracker = manager_->access_tracker();
  manager_->segment_map().ForEach([&](const core::SegmentInfo& info) {
    if (info.state == core::SegmentState::kLost) return;
    core::AccessTracker::DominantAccessor dom;
    if (tracker.Dominant(info.id, now, &dom) && dom.server < raw.size()) {
      raw[dom.server] += static_cast<double>(info.size);
    } else if (!info.home.is_pool() && info.home.server < raw.size()) {
      raw[info.home.server] += static_cast<double>(info.size);
    }
  });

  std::vector<core::ServerDemand> demands;
  demands.reserve(servers_.size());
  for (cluster::ServerId s = 0; s < servers_.size(); ++s) {
    PerServer& st = servers_[s];
    if (st.updated < 0) {
      st.smoothed = raw[s];
    } else {
      const SimTime dt = now - st.updated;
      if (dt > 0) {
        const double alpha = 1.0 - std::exp(-dt / config_.time_constant);
        st.smoothed += alpha * (raw[s] - st.smoothed);
      }
    }
    st.updated = now;

    // Round the smoothed estimate up to whole frames: sub-frame dither
    // would otherwise produce endless ±1-byte resize requests.
    const Bytes frame = manager_->cluster().server(s).frame_size();
    const Bytes organic =
        mem::FramesForBytes(
            static_cast<Bytes>(st.smoothed * config_.headroom_factor),
            frame) *
        frame;
    demands.push_back(core::ServerDemand{s, st.private_floor,
                                         organic + st.lease_demand,
                                         st.priority});
  }
  return demands;
}

double DemandEstimator::ObservedLocalFraction(SimTime now) const {
  const core::AccessTracker& tracker = manager_->access_tracker();
  const int n = manager_->cluster().num_servers();
  double local = 0, total = 0;
  manager_->segment_map().ForEach([&](const core::SegmentInfo& info) {
    if (info.state == core::SegmentState::kLost) return;
    for (int s = 0; s < n; ++s) {
      const double bytes =
          tracker.AccessedBytes(info.id, static_cast<cluster::ServerId>(s),
                                now);
      total += bytes;
      if (!info.home.is_pool() &&
          info.home.server == static_cast<cluster::ServerId>(s)) {
        local += bytes;
      }
    }
  });
  return total == 0 ? 1.0 : local / total;
}

double DemandEstimator::ObservedLocalFraction(
    SimTime now, cluster::ServerId server) const {
  const core::AccessTracker& tracker = manager_->access_tracker();
  double local = 0, total = 0;
  manager_->segment_map().ForEach([&](const core::SegmentInfo& info) {
    if (info.state == core::SegmentState::kLost) return;
    const double bytes = tracker.AccessedBytes(info.id, server, now);
    total += bytes;
    if (!info.home.is_pool() && info.home.server == server) local += bytes;
  });
  return total == 0 ? 1.0 : local / total;
}

Bytes DemandEstimator::SmoothedOrganicDemand() const {
  double sum = 0;
  for (const PerServer& s : servers_) sum += s.smoothed;
  return static_cast<Bytes>(sum);
}

}  // namespace lmp::ctrl
