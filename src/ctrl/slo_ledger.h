// SloLedger: per-tenant SLO attainment accounting.
//
// The paper sells logical pools on serving "high-value applications"
// within locality and availability bounds (§5); this ledger measures
// whether a run actually delivered.  Each tenant registers targets —
// a local-fraction floor, a bandwidth floor, an unavailability budget —
// and the control plane / chaos harness feed observations as they
// happen: the SizingController records each active lease's observed
// local fraction every epoch, benches record achieved bandwidth per
// workload cell, and the FaultInjector's unavailability windows are
// charged to the tenants whose buffers they hit.  The report is
// per-tenant attainment (samples met / samples taken) plus min/mean,
// exported as a JSON sidecar (--slo-out=).
//
// Determinism: observations carry only sim-derived values, entries are
// keyed by tenant name in sorted order, and JSON rendering uses the
// shared trace::JsonNumber helpers — byte-identical across runs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace lmp::ctrl {

struct SloTargets {
  // Epoch samples with observed local fraction >= this count as met.
  // <= 0: no locality target (every sample counts as met).
  double local_fraction_floor = 0.0;
  // Bandwidth samples >= this (GB/s) count as met.  <= 0: no target.
  double min_bandwidth_gbps = 0.0;
  // Total unavailability budget over the run.  < 0: no target.
  SimTime max_unavailability = -1;
  // Op-latency tail ceiling: p99 samples (ns, from the op engine's
  // per-kind histograms) at or under this count as met.  < 0: no target.
  SimTime max_op_p99 = -1;
};

struct SloAttainment {
  std::string tenant;
  SloTargets targets;

  std::uint64_t local_samples = 0;
  std::uint64_t local_met = 0;
  double local_min = 0;
  double local_sum = 0;

  std::uint64_t bandwidth_samples = 0;
  std::uint64_t bandwidth_met = 0;
  double bandwidth_min = 0;
  double bandwidth_sum = 0;

  std::uint64_t unavailability_windows = 0;
  SimTime unavailability = 0;

  std::uint64_t op_p99_samples = 0;
  std::uint64_t op_p99_met = 0;
  SimTime op_p99_worst = 0;
  double op_p99_sum = 0;

  // Fraction of samples that met the floor; 1.0 with no samples (an SLO
  // nobody observed is vacuously attained, mirroring
  // DemandEstimator::ObservedLocalFraction's no-traffic convention).
  double LocalAttainment() const;
  double BandwidthAttainment() const;
  double OpP99Attainment() const;
  bool UnavailabilityMet() const;
  // All four dimensions within target.
  bool Met() const;
};

class SloLedger {
 public:
  // Registers (or re-targets) a tenant.  Observations for unregistered
  // tenants auto-register with default (no-op) targets, so chaos cells
  // can be charged without pre-declaring.
  void Register(std::string_view tenant, SloTargets targets);

  void RecordLocalFraction(std::string_view tenant, double fraction);
  void RecordBandwidth(std::string_view tenant, double gbps);
  // One epoch's observed op-latency p99 (ns); the controller samples it
  // from the tenant's op-engine histogram each epoch.
  void RecordOpP99(std::string_view tenant, SimTime p99);
  // One closed unavailability window of `duration` ns.
  void AddUnavailability(std::string_view tenant, SimTime duration);

  std::size_t tenant_count() const { return tenants_.size(); }
  // Null when the tenant has never been registered or observed.
  const SloAttainment* Find(std::string_view tenant) const;
  // All tenants in name order.
  std::vector<SloAttainment> Report() const;

  // {"tenants":{name:{"targets":{...},"local":{...},"bandwidth":{...},
  //                   "unavailability":{...},"met":bool},...}}
  std::string Json() const;
  Status WriteJson(const std::string& path) const;
  // Human-readable per-tenant table (bench stdout when --slo-out is on).
  std::string ReportTable() const;

 private:
  SloAttainment& entry(std::string_view tenant);

  std::map<std::string, SloAttainment, std::less<>> tenants_;
};

}  // namespace lmp::ctrl
