#include "ctrl/hier/hier_controller.h"

#include <algorithm>

#include "common/logging.h"
#include "common/trace.h"

namespace lmp::ctrl::hier {

HierController::HierController(Bindings bindings, HierConfig config)
    : sim_(bindings.sim),
      manager_(bindings.manager),
      topology_(bindings.topology),
      injector_(bindings.injector),
      config_(config),
      coordinator_(config.coordinator),
      probe_estimator_(bindings.manager) {
  LMP_CHECK(sim_ != nullptr);
  LMP_CHECK(manager_ != nullptr);
  LMP_CHECK(config_.period > 0);
  LMP_CHECK(config_.global_every >= 1);

  const auto num_servers =
      static_cast<cluster::ServerId>(manager_->cluster().num_servers());
  int num_racks = 1;
  cluster::ServerId per_rack = num_servers;
  if (topology_ != nullptr && topology_->num_racks() > 0) {
    num_racks = topology_->num_racks();
    per_rack = static_cast<cluster::ServerId>(topology_->servers_per_rack());
  }
  SizingController::Bindings rack_bindings;
  rack_bindings.sim = sim_;
  rack_bindings.manager = manager_;
  rack_bindings.topology = topology_;
  for (int r = 0; r < num_racks; ++r) {
    const cluster::ServerId first = std::min(
        static_cast<cluster::ServerId>(r) * per_rack, num_servers);
    const cluster::ServerId limit = std::min(
        static_cast<cluster::ServerId>(r + 1) * per_rack, num_servers);
    if (first >= limit) break;  // topology has more racks than the cluster
    ControllerConfig rc = config_.rack;
    rc.period = config_.period;
    rc.horizon = -1;  // rack epochs run on the parent's clock
    racks_.push_back(
        std::make_unique<RackController>(rack_bindings, r, first, limit, rc));
  }
  LMP_CHECK(!racks_.empty());

  if (injector_ != nullptr) {
    injector_->set_event_listener([this](const chaos::FaultEvent& event) {
      if (!running_) return;
      switch (event.kind) {
        case chaos::FaultKind::kServerCrash:
        case chaos::FaultKind::kServerRecover:
        case chaos::FaultKind::kRackFail:
          // Defer through a zero-delay timer: the injector is mid-Apply
          // and the spine re-solve must not run inside its call stack.
          sim_->ScheduleAfter(0, [this](SimTime t) {
            if (!running_) return;
            metrics_->Increment("hier.oob_epochs");
            RunEpoch(t, /*out_of_band=*/true);
          });
          break;
        default:
          break;  // link events change rates, not capacity
      }
    });
  }
}

RackController& HierController::rack_of(cluster::ServerId server) {
  for (auto& r : racks_) {
    if (server >= r->first() && server < r->limit()) return *r;
  }
  LMP_CHECK(false) << "server " << server << " is in no rack";
  return *racks_.front();  // unreachable
}

void HierController::AddOpSloProbe(OpSloProbe probe) {
  rack_of(probe.server).sizing().AddOpSloProbe(std::move(probe));
}

void HierController::set_access_bits(core::AccessBitSampler* sampler) {
  sampler_ = sampler;
  for (auto& r : racks_) {
    r->sizing().set_access_bits(sampler, /*scan_each_epoch=*/false);
  }
}

void HierController::set_metrics(MetricsRegistry* registry) {
  LMP_CHECK(registry != nullptr);
  metrics_ = registry;
  for (auto& r : racks_) r->set_metrics(registry);
}

void HierController::set_trace(trace::TraceCollector* collector) {
  trace_ = collector;
  for (auto& r : racks_) r->sizing().set_trace(collector);
}

void HierController::set_slo_ledger(SloLedger* ledger) {
  for (auto& r : racks_) r->sizing().set_slo_ledger(ledger);
}

void HierController::Start() {
  if (running_) return;
  running_ = true;
  metrics_->Increment("hier.starts");
  ScheduleNext();
}

void HierController::Stop() { running_ = false; }

void HierController::ScheduleNext() {
  if (!running_ || epoch_scheduled_) return;
  const SimTime next = sim_->now() + config_.period;
  if (config_.horizon >= 0 && next > config_.horizon) {
    running_ = false;
    return;
  }
  epoch_scheduled_ = true;
  sim_->ScheduleAt(next, [this](SimTime t) {
    epoch_scheduled_ = false;
    if (!running_) return;
    RunEpoch(t, /*out_of_band=*/false);
    ScheduleNext();
  });
}

void HierController::RunEpochNow() {
  RunEpoch(sim_->now(), /*out_of_band=*/false);
}

void HierController::RunEpoch(SimTime now, bool out_of_band) {
  ++stats_.epochs;
  metrics_->Increment("hier.epochs");

  // One scan for all racks: every rack estimator then attributes from the
  // same completed interval instead of the first scanner starving the
  // rest.
  if (sampler_ != nullptr) (void)sampler_->ScanAndClear();

  for (auto& r : racks_) r->RunEpoch(now);

  const bool spine_due =
      out_of_band || config_.global_every == 1 ||
      stats_.epochs % static_cast<std::uint64_t>(config_.global_every) == 0;
  if (spine_due) RunGlobalRound(now, out_of_band);

  stats_.last_local_fraction = probe_estimator_.ObservedLocalFraction(now);
  metrics_->SetGauge("hier.local_fraction", stats_.last_local_fraction);
  metrics_->SetGauge("hier.spine_bytes_moved",
                     static_cast<double>(SpineBytesMoved()));
  if (trace_ != nullptr) {
    trace_->Instant(trace::Category::kCtrl,
                    out_of_band ? "hier_oob_epoch" : "hier_epoch", now,
                    {trace::Arg("epoch", stats_.epochs),
                     trace::Arg("local_fraction", stats_.last_local_fraction),
                     trace::Arg("spine_bytes", SpineBytesMoved())});
  }
}

void HierController::RunGlobalRound(SimTime now, bool out_of_band) {
  ++stats_.global_rounds;
  metrics_->Increment("hier.global_rounds");
  if (out_of_band) {
    ++stats_.oob_resolves;
    metrics_->Increment("hier.oob_resolves");
  }

  std::vector<RackSummary> summaries;
  summaries.reserve(racks_.size());
  for (auto& r : racks_) summaries.push_back(r->Summary(now));
  const SpinePlan plan = coordinator_.Solve(summaries);

  stats_.pull_grants += plan.pulls.size();
  stats_.push_grants += plan.pushes.size();
  stats_.granted_bytes += plan.granted;
  metrics_->Increment("hier.granted_bytes", plan.granted);

  for (const PullGrant& g : plan.pulls) {
    stats_.pulled_bytes += racks_[g.rack]->ExecutePulls(now, g.budget);
  }
  for (const PushGrant& g : plan.pushes) {
    RackController& dst = *racks_[g.dst_rack];
    stats_.pushed_bytes += racks_[g.src_rack]->ExecutePushes(
        now, g.budget, dst.first(), dst.limit());
  }

  if (trace_ != nullptr) {
    trace_->Instant(
        trace::Category::kCtrl, "spine_round", now,
        {trace::Arg("round", stats_.global_rounds),
         trace::Arg("granted", plan.granted),
         trace::Arg("pulls", static_cast<std::uint64_t>(plan.pulls.size())),
         trace::Arg("pushes",
                    static_cast<std::uint64_t>(plan.pushes.size())),
         trace::Arg("oob", out_of_band ? 1 : 0)});
  }
}

Bytes HierController::SpineBytesMoved() const {
  Bytes total = 0;
  for (const auto& r : racks_) {
    total += r->stats().spine_bytes;
    total += r->sizing().stats().spine_bytes;
  }
  return total;
}

}  // namespace lmp::ctrl::hier
