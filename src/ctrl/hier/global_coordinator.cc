#include "ctrl/hier/global_coordinator.h"

#include <algorithm>

#include "common/logging.h"

namespace lmp::ctrl::hier {

GlobalCoordinator::GlobalCoordinator(CoordinatorConfig config)
    : config_(config) {
  LMP_CHECK(config_.spine_budget > 0);
  LMP_CHECK(config_.headroom_reserve >= 0 && config_.headroom_reserve < 1);
}

SpinePlan GlobalCoordinator::Solve(
    const std::vector<RackSummary>& racks) const {
  SpinePlan plan;
  Bytes budget = config_.spine_budget;

  // Grantable headroom per rack: free bytes minus the reserve, debited as
  // grants land so pulls and pushes share one capacity view.
  std::vector<Bytes> avail(racks.size(), 0);
  for (std::size_t i = 0; i < racks.size(); ++i) {
    if (!racks[i].alive) continue;
    avail[i] = static_cast<Bytes>(static_cast<double>(racks[i].headroom) *
                                  (1.0 - config_.headroom_reserve));
  }

  // Pull phase first: localizing hot bytes is the paper's objective, so
  // locality repair outranks capacity overflow for the shared budget.
  for (std::size_t i = 0; i < racks.size(); ++i) {
    if (!racks[i].alive) continue;
    const Bytes want =
        std::min({racks[i].remote_hot_bytes, avail[i], budget});
    if (want < config_.min_grant) continue;
    plan.pulls.push_back(PullGrant{racks[i].rack, want});
    plan.granted += want;
    budget -= want;
    avail[i] -= want;
  }

  // Push phase: spread each deficit rack's residual over surplus racks in
  // id order.
  for (std::size_t i = 0; i < racks.size(); ++i) {
    if (!racks[i].alive) continue;
    Bytes need = racks[i].residual_demand;
    for (std::size_t j = 0; j < racks.size(); ++j) {
      if (j == i || !racks[j].alive) continue;
      if (need < config_.min_grant || budget == 0) break;
      const Bytes grant = std::min({need, avail[j], budget});
      if (grant < config_.min_grant) continue;
      plan.pushes.push_back(
          PushGrant{racks[i].rack, racks[j].rack, grant});
      plan.granted += grant;
      budget -= grant;
      avail[j] -= grant;
      need -= grant;
    }
  }
  return plan;
}

}  // namespace lmp::ctrl::hier
