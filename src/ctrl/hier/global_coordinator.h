// GlobalCoordinator: the spine tier's rack-level balance.
//
// The coordinator never sees a segment.  Each spine round it receives one
// RackSummary per rack and solves a coarse balance over four scalars per
// rack, emitting *bounded budgets* rather than moves:
//
//   * Pull grants  — a rack with hot bytes homed elsewhere may pull up to
//     `budget` of them home (locality repair after failover or migration
//     drift).
//   * Push grants  — a rack whose own solve left residual demand may push
//     up to `budget` of its coldest bytes into a named surplus rack,
//     freeing local room for the demand that actually wants to be there
//     (capacity overflow).
//
// Every grant is capped by the per-round spine budget, by the receiving
// rack's reserved headroom, and by a minimum-grant floor (spine
// hysteresis), so the uplinks see a bounded, predictable control-plane
// load.  Racks are visited in id order and the solve is pure arithmetic
// over its inputs — byte-deterministic.
#pragma once

#include <vector>

#include "common/units.h"
#include "ctrl/hier/rack_controller.h"

namespace lmp::ctrl::hier {

struct CoordinatorConfig {
  // Cap on cross-rack bytes granted per spine round.
  Bytes spine_budget = MiB(64);
  // Fraction of a rack's free bytes held back when granting into it, so a
  // grant cannot fill a rack to the brim and trigger its own overflow.
  double headroom_reserve = 0.25;
  // Grants below this are noise — dropped (hysteresis for the spine).
  Bytes min_grant = KiB(64);
};

struct PullGrant {
  int rack = 0;  // the rack allowed to pull hot remote bytes home
  Bytes budget = 0;
};

struct PushGrant {
  int src_rack = 0;  // the deficit rack shedding cold bytes
  int dst_rack = 0;  // the surplus rack absorbing them
  Bytes budget = 0;
};

struct SpinePlan {
  std::vector<PullGrant> pulls;
  std::vector<PushGrant> pushes;
  Bytes granted = 0;  // total budgeted bytes this round
};

class GlobalCoordinator {
 public:
  explicit GlobalCoordinator(CoordinatorConfig config = {});

  // Solves one spine round.  `racks` must be in rack-id order; dead racks
  // (alive == false) neither give nor receive grants.
  SpinePlan Solve(const std::vector<RackSummary>& racks) const;

  const CoordinatorConfig& config() const { return config_; }

 private:
  CoordinatorConfig config_;
};

}  // namespace lmp::ctrl::hier
