#include "ctrl/hier/rack_controller.h"

#include <algorithm>

#include "common/logging.h"
#include "core/runtime.h"

namespace lmp::ctrl::hier {

namespace {

SizingController::Bindings RackBindings(SizingController::Bindings b) {
  b.injector = nullptr;  // chaos reactions belong to the spine tier
  return b;
}

ControllerConfig RackScope(ControllerConfig c, cluster::ServerId first,
                           cluster::ServerId limit) {
  c.scope_first = first;
  c.scope_limit = limit;
  return c;
}

}  // namespace

RackController::RackController(SizingController::Bindings bindings, int rack,
                               cluster::ServerId first,
                               cluster::ServerId limit,
                               ControllerConfig config)
    : rack_(rack),
      first_(first),
      limit_(limit),
      sim_(bindings.sim),
      manager_(bindings.manager),
      topology_(bindings.topology),
      sizing_(RackBindings(bindings), RackScope(config, first, limit)) {
  LMP_CHECK(first < limit) << "empty rack";
}

void RackController::set_metrics(MetricsRegistry* registry) {
  LMP_CHECK(registry != nullptr);
  metrics_ = registry;
  sizing_.set_metrics(registry);
}

void RackController::RunEpoch(SimTime now) {
  LMP_CHECK(sim_->now() == now) << "rack epochs run on the driver's clock";
  sizing_.RunEpochNow();
}

RackSummary RackController::Summary(SimTime now) const {
  RackSummary s;
  s.rack = rack_;
  s.residual_demand = sizing_.stats().last_unmet_demand;
  const cluster::Cluster& cluster = manager_->cluster();
  for (cluster::ServerId id = first_; id < limit_; ++id) {
    if (cluster.server(id).crashed()) continue;
    s.alive = true;
    s.headroom += cluster.server(id).shared_allocator().free_bytes();
  }
  s.remote_hot_bytes = sizing_.estimator().RemoteHotBytes(now);
  s.local_fraction = sizing_.estimator().ObservedLocalFraction(now);
  return s;
}

void RackController::PriceDma(const core::Location& from,
                              const core::Location& to, Bytes bytes) {
  if (topology_ == nullptr || from.is_pool() || to.is_pool() ||
      from.server == to.server || bytes == 0) {
    return;
  }
  if (topology_->CrossRack(from.server, to.server)) {
    stats_.spine_bytes += bytes;
    metrics_->Increment("hier.spine_bytes", bytes);
  }
  sim_->StartFlow(static_cast<double>(bytes),
                  topology_->DmaRemotePath(from.server, to.server),
                  [this](sim::FlowId f, SimTime) {
                    (void)sim_->ReleaseRecord(f);
                  });
}

Bytes RackController::ExecutePulls(SimTime now, Bytes budget) {
  Bytes moved = 0;
  const cluster::Cluster& cluster = manager_->cluster();
  for (const DemandEstimator::PullCandidate& c :
       sizing_.estimator().PullCandidates(now)) {
    if (moved + c.size > budget) continue;  // try smaller candidates
    if (cluster.server(c.dst).crashed()) continue;
    if (cluster.server(c.dst).shared_allocator().free_bytes() < c.size) {
      continue;
    }
    auto rec_or = manager_->MigrateSegment(c.seg, c.dst);
    if (!rec_or.ok()) continue;  // busy or OOM: next candidate
    ++stats_.pulls;
    moved += rec_or->bytes;
    PriceDma(rec_or->from, rec_or->to, rec_or->bytes);
  }
  stats_.pulled_bytes += moved;
  metrics_->Increment("hier.pulled_bytes", moved);
  return moved;
}

Bytes RackController::ExecutePushes(SimTime now, Bytes budget,
                                    cluster::ServerId dst_first,
                                    cluster::ServerId dst_limit) {
  Bytes moved = 0;
  cluster::Cluster& cluster = manager_->cluster();
  for (cluster::ServerId src = first_; src < limit_; ++src) {
    if (moved >= budget) break;
    if (cluster.server(src).crashed()) continue;
    // All mobile residents of `src`, coldest first — the cheapest
    // segments to exile across the spine.
    for (const core::DrainVictim& v :
         core::BlockedResidents(*manager_, src, 0, now)) {
      if (v.pinned) continue;
      if (moved + v.size > budget) continue;
      cluster::ServerId dest = src;
      Bytes best_free = 0;
      for (cluster::ServerId d = dst_first; d < dst_limit; ++d) {
        if (cluster.server(d).crashed()) continue;
        const Bytes free = cluster.server(d).shared_allocator().free_bytes();
        if (free >= v.size && free > best_free) {
          dest = d;
          best_free = free;
        }
      }
      if (dest == src) continue;  // destination rack cannot absorb it
      auto rec_or = manager_->MigrateSegment(v.seg, dest);
      if (!rec_or.ok()) continue;  // busy: next victim
      ++stats_.pushes;
      moved += rec_or->bytes;
      PriceDma(rec_or->from, rec_or->to, rec_or->bytes);
    }
  }
  stats_.pushed_bytes += moved;
  metrics_->Increment("hier.pushed_bytes", moved);
  return moved;
}

}  // namespace lmp::ctrl::hier
