// RackController: the rack tier of the hierarchical control plane.
//
// Disaggregation across a whole datacenter does not survive contact with
// the spine: oversubscribed inter-rack links make "memory anywhere" cost
// what the paper's Table 1 charges for RDMA.  The hierarchical design
// keeps the paper's closed sizing loop (§5) *per rack* — each rack runs a
// scoped SizingController whose estimator, solver, admission placement,
// drains, and migration never leave the rack — and reserves cross-rack
// moves for explicit spine grants issued by the GlobalCoordinator.
//
// A RackController therefore does three things:
//   * RunEpoch    — one scoped sizing epoch (delegates to the embedded
//                   SizingController; rack-local by construction).
//   * Summary     — the compressed state the coordinator prices: residual
//                   (unmet) demand, free headroom, remote-hot bytes (what
//                   a pull would localize), observed local fraction.
//   * ExecutePulls / ExecutePushes — consume a granted spine budget by
//                   migrating segments across the rack boundary, priced as
//                   DMA flows over the uplinks.
//
// Determinism: everything iterates servers and candidates in id order and
// runs off the fluid simulator's clock; no wall time or randomness.
#pragma once

#include <cstdint>

#include "common/units.h"
#include "ctrl/controller.h"

namespace lmp::ctrl::hier {

// The per-epoch digest a rack sends up to the spine coordinator — a few
// scalars instead of per-segment state, which is the point of the
// hierarchy: the global tier reasons about racks, not segments.
struct RackSummary {
  int rack = 0;
  // Demand the rack's own solve could not place (bytes).
  Bytes residual_demand = 0;
  // Free shared bytes across the rack's live servers.
  Bytes headroom = 0;
  // Bytes homed off-rack whose dominant accessor is in-rack — what a pull
  // grant would localize.
  Bytes remote_hot_bytes = 0;
  // Rack-scoped observed local fraction (traffic weighted).
  double local_fraction = 1.0;
  // False once every server in the rack is down (rack failure).
  bool alive = false;
};

struct RackStats {
  std::uint64_t pulls = 0;   // segments pulled in across the spine
  std::uint64_t pushes = 0;  // segments pushed out across the spine
  Bytes pulled_bytes = 0;
  Bytes pushed_bytes = 0;
  Bytes spine_bytes = 0;  // priced cross-rack bytes (pulls + pushes)
};

class RackController {
 public:
  // Owns servers [first, limit).  `bindings.injector` is ignored: chaos
  // events are the spine tier's to react to, and the injector has a
  // single listener slot.  `config`'s scope fields are overwritten.
  RackController(SizingController::Bindings bindings, int rack,
                 cluster::ServerId first, cluster::ServerId limit,
                 ControllerConfig config);

  RackController(const RackController&) = delete;
  RackController& operator=(const RackController&) = delete;

  int rack() const { return rack_; }
  cluster::ServerId first() const { return first_; }
  cluster::ServerId limit() const { return limit_; }

  SizingController& sizing() { return sizing_; }
  const SizingController& sizing() const { return sizing_; }

  // One rack-local sizing epoch at the simulator's current time.
  void RunEpoch(SimTime now);

  RackSummary Summary(SimTime now) const;

  // Consumes a pull grant: migrates the hottest off-rack-homed,
  // in-rack-dominated segments to their dominant accessor, up to `budget`
  // bytes, pricing each move as a DMA flow over the spine.  Returns the
  // bytes actually moved (candidates can be busy, dead, or oversized).
  Bytes ExecutePulls(SimTime now, Bytes budget);

  // Consumes a push grant toward servers [dst_first, dst_limit): moves
  // this rack's coldest mobile residents to the most-free live server
  // there, freeing room for demand the rack-local solve could not place.
  Bytes ExecutePushes(SimTime now, Bytes budget, cluster::ServerId dst_first,
                      cluster::ServerId dst_limit);

  const RackStats& stats() const { return stats_; }

  void set_metrics(MetricsRegistry* registry);

 private:
  // Prices one executed migration as a DMA flow (spine-aware accounting).
  void PriceDma(const core::Location& from, const core::Location& to,
                Bytes bytes);

  int rack_;
  cluster::ServerId first_;
  cluster::ServerId limit_;
  sim::FluidSimulator* sim_;
  core::PoolManager* manager_;
  fabric::Topology* topology_;
  SizingController sizing_;
  RackStats stats_;
  MetricsRegistry* metrics_ = &MetricsRegistry::Global();
};

}  // namespace lmp::ctrl::hier
