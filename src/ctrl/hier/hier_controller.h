// HierController: the two-level control plane, assembled.
//
// One sim-time loop drives both tiers:
//
//   epoch:  [scan shared access bits once, if configured]
//           rack 0 epoch -> rack 1 epoch -> ...       (rack-local sizing)
//   every `global_every` epochs (and out-of-band on chaos events):
//           collect RackSummary per rack
//           GlobalCoordinator::Solve  ->  SpinePlan
//           execute pull grants, then push grants     (rack-id order)
//
// Rack epochs are strictly rack-local (scoped SizingControllers), so the
// only cross-rack traffic the control plane generates is what the spine
// round explicitly granted — the property bench_hier measures against the
// flat controller, whose drains and migrations wander across racks
// whenever a peer there looks attractive.
//
// Chaos: with a FaultInjector bound, server crash/recover and rack-fail
// events trigger an out-of-band epoch *with a forced spine round* through
// a zero-delay timer, so a dead rack's demand is re-homed onto survivors
// without waiting for the periodic cadence.
//
// Determinism: racks are driven in id order off the fluid simulator's
// clock; the coordinator is pure arithmetic.  Byte-identical sidecars
// across runs and `--threads=` values.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "chaos/fault_injector.h"
#include "common/metrics.h"
#include "common/units.h"
#include "ctrl/controller.h"
#include "ctrl/hier/global_coordinator.h"
#include "ctrl/hier/rack_controller.h"

namespace lmp::ctrl::hier {

struct HierConfig {
  SimTime period = Milliseconds(100);
  // Stop scheduling epochs at/after this sim time (< 0: run until Stop()).
  SimTime horizon = -1;
  // Spine rounds run every N rack epochs (>= 1).  Rack tiers react fast;
  // the global tier reasons over smoothed summaries and can afford to be
  // slower — that asymmetry is the point of the hierarchy.
  int global_every = 2;
  // Template for every rack's scoped SizingController (scope fields and
  // period/horizon are overwritten per rack).
  ControllerConfig rack;
  CoordinatorConfig coordinator;
};

struct HierStats {
  std::uint64_t epochs = 0;
  std::uint64_t global_rounds = 0;
  std::uint64_t oob_resolves = 0;  // chaos-triggered spine rounds
  std::uint64_t pull_grants = 0;
  std::uint64_t push_grants = 0;
  Bytes granted_bytes = 0;  // budgets issued
  Bytes pulled_bytes = 0;   // bytes pull grants actually moved
  Bytes pushed_bytes = 0;   // bytes push grants actually moved
  double last_local_fraction = 1.0;  // cluster-wide, traffic-weighted
};

class HierController {
 public:
  struct Bindings {
    sim::FluidSimulator* sim = nullptr;        // required: clock + timers
    core::PoolManager* manager = nullptr;      // required
    fabric::Topology* topology = nullptr;      // rack map + spine pricing
    chaos::FaultInjector* injector = nullptr;  // faults => OOB spine round
  };

  // Rack boundaries come from the topology's rack shards; without a
  // topology (or with racks never assigned) the whole cluster forms one
  // rack and the controller degenerates to the flat loop plus a trivial
  // spine tier.
  HierController(Bindings bindings, HierConfig config = {});

  int num_racks() const { return static_cast<int>(racks_.size()); }
  RackController& rack(int r) { return *racks_[r]; }
  const RackController& rack(int r) const { return *racks_[r]; }
  // The rack controller owning `server`.
  RackController& rack_of(cluster::ServerId server);

  // Starts the periodic loop: first epoch at now + period.
  void Start();
  void Stop();
  bool running() const { return running_; }

  // One full epoch (all racks; spine round if due) at the simulator's
  // current time.
  void RunEpochNow();

  const HierStats& stats() const { return stats_; }
  const HierConfig& config() const { return config_; }

  // Control-plane bytes that actually crossed the spine: granted pulls
  // and pushes, plus any cross-rack drain traffic from the rack tiers
  // (zero by construction while every rack has in-rack room).
  Bytes SpineBytesMoved() const;

  // Routes a tail-latency probe to the rack owning `probe.server`.
  void AddOpSloProbe(OpSloProbe probe);

  // Shares one access-bit sampler across all rack estimators; the
  // controller scans it exactly once per epoch.
  void set_access_bits(core::AccessBitSampler* sampler);

  void set_metrics(MetricsRegistry* registry);
  void set_trace(trace::TraceCollector* collector);
  void set_slo_ledger(SloLedger* ledger);

 private:
  void ScheduleNext();
  void RunEpoch(SimTime now, bool out_of_band);
  void RunGlobalRound(SimTime now, bool out_of_band);

  sim::FluidSimulator* sim_;
  core::PoolManager* manager_;
  fabric::Topology* topology_;
  chaos::FaultInjector* injector_;
  HierConfig config_;

  // Stable addresses: rack controllers capture `this` in callbacks.
  std::vector<std::unique_ptr<RackController>> racks_;
  GlobalCoordinator coordinator_;
  // Full-cluster estimator used only for ObservedLocalFraction telemetry
  // (never Estimate()d, so it carries no smoothing state).
  DemandEstimator probe_estimator_;

  bool running_ = false;
  bool epoch_scheduled_ = false;
  core::AccessBitSampler* sampler_ = nullptr;

  HierStats stats_;
  MetricsRegistry* metrics_ = &MetricsRegistry::Global();
  trace::TraceCollector* trace_ = nullptr;
};

}  // namespace lmp::ctrl::hier
