// SizingController: the closed sizing loop the paper leaves open.
//
// §5 frames shared-region sizing as a *periodically solved* optimization;
// the offline SizingOptimizer solves it once and defers any shrink that
// live frames block.  The controller closes the loop as a sim-time timer:
//
//   telemetry ──> DemandEstimator ──> SizingOptimizer::Solve ──> actuate
//        ^                                                        │
//        └── drains (MigrationEngine moves, priced as DMA flows) <┘
//
// Every `period` it (1) refreshes admission headroom and folds active
// leases into demand, (2) estimates per-server demand from hotness and
// allocation watermarks, (3) re-solves, and (4) actuates with damping:
// deltas under `min_step` are ignored (hysteresis) and a server that just
// resized rests for `cooldown`, so steady demand converges to a fixed
// point instead of oscillating.  A shrink blocked by live frames becomes a
// *drain*: the stranded segments (coldest first) migrate to peers
// functionally now, the moved bytes are priced as DMA flows on the fabric,
// and the ResizeShared retries when the last flow completes — deferred
// shrinks land instead of lingering.
//
// Chaos integration: with a FaultInjector bound, server crash/recover
// events trigger an out-of-band re-solve (through a zero-delay timer, so
// the injector's own apply path never re-enters the controller), and the
// pool re-balances onto the survivors without waiting for the next epoch.
//
// Determinism: everything runs off the fluid simulator's clock, servers
// are visited in id order, and no wall time or randomness enters — the
// same scenario reproduces byte-identical ctrl.* metrics and kCtrl traces.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chaos/fault_injector.h"
#include "common/metrics.h"
#include "common/units.h"
#include "core/access_bits.h"
#include "core/migration.h"
#include "core/pool_manager.h"
#include "core/runtime.h"
#include "core/sizing.h"
#include "ctrl/admission.h"
#include "ctrl/demand_estimator.h"
#include "fabric/topology.h"
#include "sim/fluid.h"

namespace lmp::trace {
class TraceCollector;
}

namespace lmp::ctrl {

class SloLedger;

struct ControllerConfig {
  SimTime period = Milliseconds(100);
  // Damping: ignore resizes smaller than this (hysteresis band) and let a
  // freshly resized server rest before touching it again.
  Bytes min_step = MiB(1);
  SimTime cooldown = Milliseconds(200);
  // Stop scheduling epochs at/after this sim time (< 0: run until Stop()).
  // Benches set it to the workload horizon so FluidSimulator::Run
  // terminates once the last flow drains.
  SimTime horizon = -1;
  // Run a locality-balancing round each epoch (migrations are priced as
  // DMA flows like drains).
  bool run_migration = true;
  core::MigrationConfig migration;
  EstimatorConfig estimator;
  // Rack scope: when scope_limit > scope_first the controller manages only
  // servers [scope_first, scope_limit) — its estimator, solver, admission
  // placement, drains, and migration all stay inside the range, so a
  // hierarchical deployment can run one scoped controller per rack without
  // them fighting over segments.  Default (0, 0) manages the whole
  // cluster.  The migration scope is propagated automatically when unset.
  cluster::ServerId scope_first = 0;
  cluster::ServerId scope_limit = 0;
};

struct ControllerStats {
  std::uint64_t epochs = 0;
  std::uint64_t resolves = 0;      // periodic + out-of-band solver runs
  std::uint64_t oob_resolves = 0;  // chaos-triggered subset of the above
  std::uint64_t grows = 0;
  std::uint64_t shrinks = 0;           // includes drain-completed shrinks
  std::uint64_t shrinks_partial = 0;   // drain retired above its target
  std::uint64_t shrinks_deferred = 0;  // blocked shrinks that became drains
  std::uint64_t skipped_small = 0;     // |delta| < min_step
  std::uint64_t skipped_cooldown = 0;
  std::uint64_t skipped_draining = 0;  // server had a drain in flight
  std::uint64_t drains_started = 0;
  std::uint64_t drains_completed = 0;
  std::uint64_t drains_failed = 0;  // OOM or still blocked at retry
  Bytes drain_bytes = 0;            // bytes moved by drain migrations
  Bytes resize_bytes = 0;           // |delta| summed over landed resizes
  Bytes spine_bytes = 0;  // control-plane bytes priced across racks
  std::uint64_t p99_breaches = 0;  // op-SLO probe ceiling crossings
  Bytes last_unmet_demand = 0;
  double last_local_fraction = 1.0;  // observed, traffic-weighted
};

// Per-op tail-latency SLO probe.  Each epoch the controller samples the
// p99 of `histogram` (an op-engine latency distribution, nanoseconds) and
// scores it against the bound ledger's max_op_p99 target for `tenant`.
// While the sampled p99 exceeds `p99_ceiling` the probe's server estimates
// demand at `boost_priority` instead of `base_priority`, so the next solve
// leans capacity toward the tenant whose tail is hurting; recovery
// restores the base.  Probes react in registration order — deterministic.
struct OpSloProbe {
  std::string tenant;
  // Registry holding the histogram; null means the controller's own.
  const MetricsRegistry* registry = nullptr;
  std::string histogram;    // e.g. "tenantA.get"
  SimTime p99_ceiling = 0;  // breach when sampled p99 exceeds this (ns)
  cluster::ServerId server = 0;  // whose priority reacts
  double base_priority = 1.0;
  double boost_priority = 2.0;
};

class SizingController {
 public:
  struct Bindings {
    sim::FluidSimulator* sim = nullptr;       // required: clock + timers
    core::PoolManager* manager = nullptr;     // required
    fabric::Topology* topology = nullptr;     // prices drain/migration DMA
    chaos::FaultInjector* injector = nullptr; // crash => out-of-band solve
  };

  SizingController(Bindings bindings, ControllerConfig config = {});

  DemandEstimator& estimator() { return estimator_; }
  const DemandEstimator& estimator() const { return estimator_; }
  AdmissionController& admission() { return admission_; }
  core::MigrationEngine& migration_engine() { return migrator_; }

  // Starts the periodic loop: first epoch at now + period.
  void Start();
  // Stops scheduling further epochs (drains in flight still retire).
  void Stop();
  bool running() const { return running_; }

  // One epoch at the simulator's current time (tests, manual rebalances).
  void RunEpochNow();

  // Drains the controller currently has in flight.
  int pending_drains() const { return static_cast<int>(drains_.size()); }

  const ControllerStats& stats() const { return stats_; }
  const ControllerConfig& config() const { return config_; }

  // Scope helpers (full cluster when the config left scope unset).
  cluster::ServerId scope_first() const { return config_.scope_first; }
  cluster::ServerId scope_limit() const {
    return config_.scope_limit > config_.scope_first
               ? config_.scope_limit
               : static_cast<cluster::ServerId>(
                     manager_->cluster().num_servers());
  }

  // Registers a tail-latency probe; sampled every epoch from then on.
  void AddOpSloProbe(OpSloProbe probe);

  // Binds the shared access-bit sampler.  When `scan_each_epoch` is true
  // the controller scan-and-clears it at the top of every epoch; a
  // hierarchical parent that shares one sampler across several scoped
  // controllers passes false and scans once itself.
  void set_access_bits(core::AccessBitSampler* sampler,
                       bool scan_each_epoch = true);

  void set_metrics(MetricsRegistry* registry);
  void set_trace(trace::TraceCollector* collector) { trace_ = collector; }
  // With a ledger bound, every epoch scores each ACTIVE lease's observed
  // local fraction (at the lease's host server) against the tenant's
  // registered targets.  The ledger must outlive the controller.
  void set_slo_ledger(SloLedger* ledger) { slo_ledger_ = ledger; }

 private:
  struct Drain {
    Bytes target_bytes = 0;
    int pending_flows = 0;
    Bytes moved_bytes = 0;
    SimTime started = 0;
  };

  void ScheduleNext();
  void RunEpoch(SimTime now, bool out_of_band);
  void Actuate(const core::SizingPlan& plan, SimTime now);
  void ActuatePass(const core::SizingPlan& plan, SimTime now, bool grows);
  void BeginDrain(cluster::ServerId server, Bytes target_bytes, SimTime now);
  void FinishDrainFlow(cluster::ServerId server);
  void RetryShrink(cluster::ServerId server);
  void RunMigrationRound(SimTime now);
  void PriceTransfer(const core::Location& from, const core::Location& to,
                     Bytes bytes, cluster::ServerId drain_server);
  Bytes LeaseCapacity() const;
  void SampleOpSlos(SimTime now);
  void ExportEpochTelemetry(const core::SizingPlan& plan, SimTime now);

  sim::FluidSimulator* sim_;
  core::PoolManager* manager_;
  fabric::Topology* topology_;
  chaos::FaultInjector* injector_;
  ControllerConfig config_;

  DemandEstimator estimator_;
  AdmissionController admission_;
  core::MigrationEngine migrator_;

  bool running_ = false;
  bool epoch_scheduled_ = false;
  std::vector<SimTime> cooldown_until_;           // per server
  std::map<cluster::ServerId, Drain> drains_;     // in-flight drains

  struct ProbeState {
    OpSloProbe probe;
    bool breached = false;
  };
  std::vector<ProbeState> probes_;
  core::AccessBitSampler* sampler_ = nullptr;
  bool scan_access_bits_ = false;

  ControllerStats stats_;
  MetricsRegistry* metrics_ = &MetricsRegistry::Global();
  trace::TraceCollector* trace_ = nullptr;
  SloLedger* slo_ledger_ = nullptr;
};

}  // namespace lmp::ctrl
