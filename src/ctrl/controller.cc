#include "ctrl/controller.h"

#include <algorithm>

#include "common/logging.h"
#include "common/trace.h"
#include "ctrl/slo_ledger.h"

namespace lmp::ctrl {

namespace {

// Propagates the controller's rack scope into the migration config when
// the caller left the latter unscoped, so one scope declaration governs
// the whole loop.
core::MigrationConfig ScopedMigration(const ControllerConfig& config) {
  core::MigrationConfig m = config.migration;
  if (config.scope_limit > config.scope_first &&
      m.scope_limit <= m.scope_first) {
    m.scope_first = config.scope_first;
    m.scope_limit = config.scope_limit;
  }
  return m;
}

}  // namespace

SizingController::SizingController(Bindings bindings, ControllerConfig config)
    : sim_(bindings.sim),
      manager_(bindings.manager),
      topology_(bindings.topology),
      injector_(bindings.injector),
      config_(config),
      estimator_(bindings.manager, config.estimator),
      admission_(0),
      migrator_(bindings.manager, ScopedMigration(config)) {
  LMP_CHECK(sim_ != nullptr);
  LMP_CHECK(manager_ != nullptr);
  LMP_CHECK(config_.period > 0);
  LMP_CHECK(config_.cooldown >= 0);
  if (config_.scope_limit > config_.scope_first) {
    estimator_.RestrictTo(config_.scope_first, config_.scope_limit);
  }
  cooldown_until_.assign(manager_->cluster().num_servers(), -1.0);
  admission_.UpdateHeadroom(LeaseCapacity(), 0);
  admission_.set_placement_hint([this](const TenantSpec& spec) {
    const cluster::Cluster& cluster = manager_->cluster();
    if (spec.preferred.has_value() && spec.preferred >= scope_first() &&
        *spec.preferred < scope_limit() &&
        !cluster.server(*spec.preferred).crashed()) {
      return *spec.preferred;
    }
    // Live in-scope server with the most free shared bytes, lowest id on
    // ties.
    cluster::ServerId best = scope_first();
    Bytes best_free = 0;
    bool found = false;
    for (cluster::ServerId id = scope_first(); id < scope_limit(); ++id) {
      if (cluster.server(id).crashed()) continue;
      const Bytes free = cluster.server(id).shared_allocator().free_bytes();
      if (!found || free > best_free) {
        best = id;
        best_free = free;
        found = true;
      }
    }
    return best;
  });
  if (injector_ != nullptr) {
    injector_->set_event_listener([this](const chaos::FaultEvent& event) {
      if (!running_) return;
      switch (event.kind) {
        case chaos::FaultKind::kServerCrash:
        case chaos::FaultKind::kServerRecover:
        case chaos::FaultKind::kRackFail:
          // Defer through a zero-delay timer: the injector is mid-Apply
          // (possibly inside its own timer callback) and the re-solve
          // must not run from inside its call stack.
          sim_->ScheduleAfter(0, [this](SimTime t) {
            if (!running_) return;
            ++stats_.oob_resolves;
            metrics_->Increment("ctrl.oob_resolves");
            RunEpoch(t, /*out_of_band=*/true);
          });
          break;
        default:
          break;  // link events change rates, not capacity
      }
    });
  }
}

void SizingController::set_metrics(MetricsRegistry* registry) {
  LMP_CHECK(registry != nullptr);
  metrics_ = registry;
  admission_.set_metrics(registry);
}

Bytes SizingController::LeaseCapacity() const {
  // Best-case bytes the pool could dedicate to leases: live in-scope
  // servers' DRAM minus their private floors.  Organic demand is
  // subtracted dynamically via UpdateHeadroom.
  const cluster::Cluster& cluster = manager_->cluster();
  Bytes capacity = 0;
  for (cluster::ServerId s = scope_first(); s < scope_limit(); ++s) {
    const auto& srv = cluster.server(s);
    if (srv.crashed()) continue;
    capacity += srv.total_memory();
  }
  return capacity;
}

void SizingController::AddOpSloProbe(OpSloProbe probe) {
  LMP_CHECK(!probe.histogram.empty());
  LMP_CHECK(probe.p99_ceiling > 0);
  probes_.push_back(ProbeState{std::move(probe), /*breached=*/false});
}

void SizingController::set_access_bits(core::AccessBitSampler* sampler,
                                       bool scan_each_epoch) {
  sampler_ = sampler;
  scan_access_bits_ = scan_each_epoch;
  estimator_.set_access_bits(sampler);
}

void SizingController::Start() {
  if (running_) return;
  running_ = true;
  metrics_->Increment("ctrl.starts");
  ScheduleNext();
}

void SizingController::Stop() { running_ = false; }

void SizingController::ScheduleNext() {
  if (!running_ || epoch_scheduled_) return;
  const SimTime next = sim_->now() + config_.period;
  if (config_.horizon >= 0 && next > config_.horizon) {
    running_ = false;
    return;
  }
  epoch_scheduled_ = true;
  sim_->ScheduleAt(next, [this](SimTime t) {
    epoch_scheduled_ = false;
    if (!running_) return;
    RunEpoch(t, /*out_of_band=*/false);
    ScheduleNext();
  });
}

void SizingController::RunEpochNow() {
  RunEpoch(sim_->now(), /*out_of_band=*/false);
}

void SizingController::RunEpoch(SimTime now, bool out_of_band) {
  ++stats_.epochs;
  metrics_->Increment("ctrl.epochs");

  // (0) Access-bit scan: close the sampling interval so this epoch's
  // attribution sees fresh bits (skipped when a hierarchical parent owns
  // the shared sampler and scans it once for all racks).
  if (sampler_ != nullptr && scan_access_bits_) (void)sampler_->ScanAndClear();

  // (1) Admission refresh: recompute lease capacity (crashes shrink it),
  // preempt/promote, then feed the active leases to the estimator.
  admission_.UpdateHeadroom(LeaseCapacity(),
                            estimator_.SmoothedOrganicDemand());
  estimator_.ClearLeaseDemands();
  for (const auto& [server, bytes] : admission_.DemandByServer()) {
    estimator_.SetLeaseDemand(server, bytes);
  }

  // (2) Tail-latency probes react before the estimate so a breached
  // tenant's server solves at boosted priority this epoch, not next.
  SampleOpSlos(now);

  // (3) Estimate + solve.
  std::vector<core::ServerDemand> demands = estimator_.Estimate(now);
  const core::SizingPlan plan =
      core::SizingOptimizer::Solve(manager_->cluster(), std::move(demands));
  ++stats_.resolves;
  metrics_->Increment("ctrl.resolves");

  // (4) Actuate with damping, turning blocked shrinks into drains.
  Actuate(plan, now);

  // (5) Locality balancing rides the same epoch.
  if (config_.run_migration) RunMigrationRound(now);

  ExportEpochTelemetry(plan, now);
  if (trace_ != nullptr) {
    trace_->Instant(trace::Category::kCtrl,
                    out_of_band ? "ctrl_oob_epoch" : "ctrl_epoch", now,
                    {trace::Arg("epoch", stats_.epochs),
                     trace::Arg("unmet", plan.unmet_demand),
                     trace::Arg("local_fraction", stats_.last_local_fraction),
                     trace::Arg("pending_drains",
                                static_cast<std::uint64_t>(drains_.size()))});
  }
}

void SizingController::Actuate(const core::SizingPlan& plan, SimTime now) {
  // Grows land first: a shrink's drain needs somewhere for the displaced
  // frames to go, and the grow that creates that room is usually part of
  // the same plan (the demand that left one server arrived at another).
  ActuatePass(plan, now, /*grows=*/true);
  ActuatePass(plan, now, /*grows=*/false);
}

void SizingController::ActuatePass(const core::SizingPlan& plan, SimTime now,
                                   bool grows) {
  cluster::Cluster& cluster = manager_->cluster();
  for (const auto& entry : plan.entries) {
    auto& srv = cluster.server(entry.server);
    if (srv.crashed()) continue;
    const Bytes current = srv.shared_bytes();
    const Bytes target = entry.shared_bytes;
    if (target == current || (target > current) != grows) continue;
    if (drains_.count(entry.server) > 0) {
      ++stats_.skipped_draining;
      metrics_->Increment("ctrl.skipped_draining");
      continue;
    }
    const Bytes delta = target > current ? target - current : current - target;
    if (delta < config_.min_step) {
      ++stats_.skipped_small;
      metrics_->Increment("ctrl.skipped_small");
      continue;
    }
    if (cooldown_until_[entry.server] >= 0 &&
        now < cooldown_until_[entry.server]) {
      ++stats_.skipped_cooldown;
      metrics_->Increment("ctrl.skipped_cooldown");
      continue;
    }

    const Status st = srv.ResizeShared(target);
    if (st.ok()) {
      if (target > current) {
        ++stats_.grows;
        metrics_->Increment("ctrl.grows");
      } else {
        ++stats_.shrinks;
        metrics_->Increment("ctrl.shrinks");
      }
      stats_.resize_bytes += delta;
      metrics_->Increment("ctrl.resize_bytes", delta);
      cooldown_until_[entry.server] = now + config_.cooldown;
      if (trace_ != nullptr) {
        trace_->Instant(trace::Category::kCtrl, "resize", now,
                        {trace::Arg("server", entry.server),
                         trace::Arg("from", current),
                         trace::Arg("to", target)});
      }
      continue;
    }
    if (IsFailedPrecondition(st)) {
      // Live frames in the way: the §5 answer is a drain, not a deferral.
      ++stats_.shrinks_deferred;
      metrics_->Increment("ctrl.shrinks_deferred");
      BeginDrain(entry.server, target, now);
      continue;
    }
    // Anything else (bad target) is a solver bug worth surfacing loudly.
    LMP_CHECK(false) << "resize of server " << entry.server
                     << " failed: " << st.ToString();
  }
}

void SizingController::PriceTransfer(const core::Location& from,
                                     const core::Location& to, Bytes bytes,
                                     cluster::ServerId drain_server) {
  const bool track = drain_server != cluster::ServerId(-1);
  if (topology_ == nullptr || from.is_pool() || to.is_pool() ||
      from.server == to.server) {
    // No fabric model (or an intra-host copy): free, but a tracked drain
    // still needs its completion signal — defer it through a zero-delay
    // flow so retry ordering matches the priced case.
    if (track) {
      sim_->StartFlow(0, {}, [this, drain_server](sim::FlowId f, SimTime) {
        (void)sim_->ReleaseRecord(f);
        FinishDrainFlow(drain_server);
      });
    }
    return;
  }
  if (topology_->CrossRack(from.server, to.server)) {
    // Control-plane bytes that cross the spine — the quantity the
    // hierarchical design exists to minimize.
    stats_.spine_bytes += bytes;
    metrics_->Increment("ctrl.spine_bytes", bytes);
  }
  const std::vector<sim::ResourceId> path =
      topology_->DmaRemotePath(from.server, to.server);
  sim_->StartFlow(static_cast<double>(bytes), path,
                  [this, drain_server, track](sim::FlowId f, SimTime) {
                    (void)sim_->ReleaseRecord(f);
                    if (track) FinishDrainFlow(drain_server);
                  });
}

void SizingController::BeginDrain(cluster::ServerId server,
                                  Bytes target_bytes, SimTime now) {
  const std::vector<core::DrainVictim> victims =
      core::BlockedResidents(*manager_, server, target_bytes, now);
  cluster::Cluster& cluster = manager_->cluster();

  Drain drain;
  drain.target_bytes = target_bytes;
  drain.started = now;
  std::vector<core::MigrationRecord> records;
  for (const core::DrainVictim& v : victims) {
    if (v.pinned) continue;  // pinned cohorts are never drain victims
    // Placement, best first:
    //  1. The victim's dominant accessor, when it is a live peer with room
    //     — the drain then doubles as a locality migration.
    //  2. Compaction below the cut on the draining server itself — right
    //     when the drainer IS the dominant accessor (exiling the segment
    //     would just make the migrator haul it back next epoch) or when
    //     the shrink is blocked by fragmentation alone.
    //  3. The live peer with the most free shared bytes.
    cluster::ServerId dest = server;
    core::AccessTracker::DominantAccessor dom;
    if (manager_->access_tracker().Dominant(v.seg, now, &dom) &&
        dom.server != server && dom.server >= scope_first() &&
        dom.server < scope_limit() &&
        !cluster.server(dom.server).crashed() &&
        cluster.server(dom.server).shared_allocator().free_bytes() >=
            v.size) {
      dest = dom.server;
    }
    if (dest == server) {
      auto rec_or = manager_->CompactSegment(v.seg, target_bytes);
      if (rec_or.ok()) {
        if (rec_or->bytes > 0) {
          records.push_back(*rec_or);
          drain.moved_bytes += rec_or->bytes;
        }
        continue;
      }
      if (IsFailedPrecondition(rec_or.status())) continue;  // busy
      // No room below the cut: fall through to the most-free in-scope
      // peer (a scoped controller drains within its rack; off-rack room
      // is the spine coordinator's to grant).
      Bytes best_free = 0;
      for (cluster::ServerId id = scope_first(); id < scope_limit(); ++id) {
        if (id == server || cluster.server(id).crashed()) continue;
        const Bytes free = cluster.server(id).shared_allocator().free_bytes();
        if (free >= v.size && free > best_free) {
          dest = id;
          best_free = free;
        }
      }
    }
    if (dest == server) {
      // Nobody can absorb the displaced bytes; give up on this drain —
      // segments already moved stay moved, and the next epoch re-solves
      // from the new occupancy.
      ++stats_.drains_failed;
      metrics_->Increment("ctrl.drains_failed");
      if (trace_ != nullptr) {
        trace_->Instant(trace::Category::kCtrl, "drain_oom", now,
                        {trace::Arg("server", server),
                         trace::Arg("segment", v.seg)});
      }
      return;
    }
    auto rec_or = manager_->MigrateSegment(v.seg, dest);
    if (!rec_or.ok()) {
      if (IsFailedPrecondition(rec_or.status())) continue;  // busy; next epoch
      ++stats_.drains_failed;
      metrics_->Increment("ctrl.drains_failed");
      return;
    }
    records.push_back(*rec_or);
    drain.moved_bytes += rec_or->bytes;
  }

  ++stats_.drains_started;
  stats_.drain_bytes += drain.moved_bytes;
  metrics_->Increment("ctrl.drains_started");
  metrics_->Increment("ctrl.drain_bytes", drain.moved_bytes);
  if (trace_ != nullptr) {
    trace_->Begin(trace::Category::kCtrl, "drain", server, now,
                  {trace::Arg("server", server),
                   trace::Arg("target", target_bytes),
                   trace::Arg("segments",
                              static_cast<std::uint64_t>(records.size())),
                   trace::Arg("bytes", drain.moved_bytes)});
  }

  // Price the moved bytes as DMA flows; the shrink retries when the last
  // one completes.  A drain that needed no migrations (every blocker was
  // busy) still defers its retry through one zero-byte flow.
  drain.pending_flows = static_cast<int>(records.empty() ? 1 : records.size());
  drains_[server] = drain;
  if (records.empty()) {
    PriceTransfer(core::Location::OnServer(server),
                  core::Location::OnServer(server), 0, server);
  } else {
    for (const core::MigrationRecord& rec : records) {
      PriceTransfer(rec.from, rec.to, rec.bytes, server);
    }
  }
}

void SizingController::FinishDrainFlow(cluster::ServerId server) {
  auto it = drains_.find(server);
  if (it == drains_.end()) return;
  if (--it->second.pending_flows > 0) return;
  RetryShrink(server);
}

void SizingController::RetryShrink(cluster::ServerId server) {
  const Drain drain = drains_.at(server);
  drains_.erase(server);
  const SimTime now = sim_->now();
  auto& srv = manager_->cluster().server(server);
  const Bytes current = srv.shared_bytes();
  Status st = srv.crashed() ? UnavailableError("server crashed mid-drain")
                            : srv.ResizeShared(drain.target_bytes);
  bool partial = false;
  if (!st.ok() && !srv.crashed()) {
    // Frames still sit past the cut (stragglers the drain could not place,
    // or fresh allocations).  Shrink as far as the highest live frame lets
    // us rather than surrendering the whole delta; the next epoch
    // re-solves from there.
    const Bytes feasible =
        srv.shared_allocator().HighestAllocatedEnd() * srv.frame_size();
    if (feasible > drain.target_bytes && feasible < current) {
      st = srv.ResizeShared(feasible);
      partial = st.ok();
    }
  }
  if (st.ok()) {
    ++stats_.shrinks;
    ++stats_.drains_completed;
    const Bytes landed = current - srv.shared_bytes();
    stats_.resize_bytes += landed;
    metrics_->Increment("ctrl.shrinks");
    metrics_->Increment("ctrl.drains_completed");
    metrics_->RecordValue("ctrl.drain_duration_ns",
                          static_cast<std::uint64_t>(now - drain.started));
    if (partial) {
      ++stats_.shrinks_partial;
      metrics_->Increment("ctrl.shrinks_partial");
    }
    metrics_->Increment("ctrl.resize_bytes", landed);
    cooldown_until_[server] = now + config_.cooldown;
  } else {
    // New allocations landed in the tail while the drain was in flight
    // (or the server died).  The next epoch re-solves and may drain again.
    ++stats_.drains_failed;
    metrics_->Increment("ctrl.drains_failed");
  }
  if (trace_ != nullptr) {
    trace_->End(trace::Category::kCtrl, "drain", server, now);
    trace_->Instant(trace::Category::kCtrl,
                    st.ok() ? "drain_done" : "drain_retry_blocked", now,
                    {trace::Arg("server", server),
                     trace::Arg("bytes", drain.moved_bytes),
                     trace::Arg("elapsed_ns", now - drain.started)});
  }
}

void SizingController::RunMigrationRound(SimTime now) {
  std::vector<core::MigrationRecord> records;
  const core::MigrationRoundStats round =
      migrator_.RunOnce(now, &records).value_or(core::MigrationRoundStats{});
  metrics_->Increment("ctrl.migrations",
                      static_cast<std::uint64_t>(round.migrated));
  metrics_->Increment("ctrl.migration_bytes", round.bytes_moved);
  metrics_->RecordValue("ctrl.migration_round_segments",
                        static_cast<std::uint64_t>(round.migrated));
  for (const core::MigrationRecord& rec : records) {
    PriceTransfer(rec.from, rec.to, rec.bytes, cluster::ServerId(-1));
  }
}

void SizingController::SampleOpSlos(SimTime now) {
  for (ProbeState& st : probes_) {
    const OpSloProbe& p = st.probe;
    const MetricsRegistry* reg =
        p.registry != nullptr ? p.registry : metrics_;
    const Histogram* hist = reg->FindHistogram(p.histogram);
    if (hist == nullptr || hist->count() == 0) continue;  // no ops yet
    const auto p99 = static_cast<SimTime>(hist->Percentile(99));
    if (slo_ledger_ != nullptr) slo_ledger_->RecordOpP99(p.tenant, p99);
    const bool breached = p99 > p.p99_ceiling;
    if (breached == st.breached) continue;
    st.breached = breached;
    estimator_.SetPriority(p.server,
                           breached ? p.boost_priority : p.base_priority);
    if (breached) {
      ++stats_.p99_breaches;
      metrics_->Increment("ctrl.p99_breaches");
    }
    if (trace_ != nullptr) {
      trace_->Instant(trace::Category::kCtrl,
                      breached ? "p99_breach" : "p99_recover", now,
                      {trace::Arg("tenant", p.tenant),
                       trace::Arg("p99_ns", p99),
                       trace::Arg("server", p.server)});
    }
  }
}

void SizingController::ExportEpochTelemetry(const core::SizingPlan& plan,
                                            SimTime now) {
  stats_.last_unmet_demand = plan.unmet_demand;
  stats_.last_local_fraction = estimator_.ObservedLocalFraction(now);
  metrics_->SetGauge("ctrl.unmet_demand",
                     static_cast<double>(plan.unmet_demand));
  metrics_->SetGauge("ctrl.local_fraction", stats_.last_local_fraction);
  metrics_->SetGauge("ctrl.planned_local_fraction", plan.LocalFraction());
  metrics_->SetGauge("ctrl.pending_drains",
                     static_cast<double>(drains_.size()));
  if (slo_ledger_ != nullptr) {
    // A lease's locality experience is its host server's, not the
    // cluster-wide average ExportEpochTelemetry just published.
    for (const auto& [id, lease] : admission_.leases()) {
      if (lease.state != LeaseState::kActive) continue;
      slo_ledger_->RecordLocalFraction(
          lease.spec.name,
          estimator_.ObservedLocalFraction(now, lease.server));
    }
  }
}

}  // namespace lmp::ctrl
