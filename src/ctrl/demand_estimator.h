// DemandEstimator: turns live telemetry into ServerDemand declarations.
//
// The paper's sizing optimization (§5 "Sizing the shared regions") consumes
// per-server demand, but a production runtime has no oracle handing those
// in — it has to *measure* them.  The estimator derives each server's pool
// demand from the hotness profile and the segment map: every active
// segment's bytes are attributed to its dominant accessor (the server whose
// recent traffic on it is largest), falling back to the segment's home when
// it has no recorded traffic.  Attribution therefore tracks both the
// allocation watermark (segments exist => bytes are wanted) and the access
// pattern (who wants them close).
//
// Raw attributions are EWMA-smoothed in simulated time so one bursty epoch
// cannot whipsaw the solver: smoothed += (1 - exp(-dt/tau)) * (raw -
// smoothed).  The controller's hysteresis handles the residual jitter.
//
// Determinism: servers are visited in id order and all state is derived
// from sim time + simulation state, so repeated runs produce identical
// demand vectors byte-for-byte.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/units.h"
#include "core/pool_manager.h"
#include "core/sizing.h"

namespace lmp::ctrl {

struct EstimatorConfig {
  // EWMA time constant for demand smoothing.  A few controller periods:
  // long enough to ride out bursts, short enough to follow real shifts.
  SimTime time_constant = Milliseconds(50);
  // Provisioning margin applied to the smoothed estimate (1.1 = size the
  // region 10% above measured demand).
  double headroom_factor = 1.0;
};

class DemandEstimator {
 public:
  // The manager must outlive the estimator.
  explicit DemandEstimator(core::PoolManager* manager,
                           EstimatorConfig config = {});

  // Static per-server inputs the telemetry cannot observe: the private
  // floor (the server's own non-pool working set) and its priority under
  // pressure.  Defaults: floor 0, priority 1.
  void SetPrivateFloor(cluster::ServerId server, Bytes bytes);
  void SetPriority(cluster::ServerId server, double priority);

  // Demand injected by admission-controlled leases, replaced wholesale
  // each epoch (the admission controller owns lease lifecycle).
  void SetLeaseDemand(cluster::ServerId server, Bytes bytes);
  void ClearLeaseDemands();

  // One demand entry per server (id order), EWMA-smoothed as of `now`.
  // Calling twice at the same `now` is idempotent (dt = 0 folds nothing).
  std::vector<core::ServerDemand> Estimate(SimTime now);

  // Traffic-weighted fraction of recent (decayed) accesses that hit the
  // accessing server's own shared region — the quantity the paper's
  // objective maximizes, observed rather than planned.  1.0 with no
  // recorded traffic.
  double ObservedLocalFraction(SimTime now) const;

  // Same fraction restricted to one server's own accesses: how much of
  // `server`'s recent traffic hit segments homed on `server`.  1.0 when
  // the server has no recorded traffic.  Feeds per-lease SLO accounting
  // (a lease's locality experience is its host server's, not the
  // cluster-wide average).
  double ObservedLocalFraction(SimTime now, cluster::ServerId server) const;

  // Last smoothed organic (non-lease) demand, summed over servers; the
  // admission controller subtracts this from capacity to get headroom.
  Bytes SmoothedOrganicDemand() const;

  const EstimatorConfig& config() const { return config_; }

 private:
  struct PerServer {
    Bytes private_floor = 0;
    double priority = 1.0;
    Bytes lease_demand = 0;
    double smoothed = 0;   // EWMA of raw attributed bytes
    SimTime updated = -1;  // < 0: no observation yet
  };

  PerServer& state(cluster::ServerId server);

  core::PoolManager* manager_;
  EstimatorConfig config_;
  std::vector<PerServer> servers_;
};

}  // namespace lmp::ctrl
