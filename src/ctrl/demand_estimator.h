// DemandEstimator: turns live telemetry into ServerDemand declarations.
//
// The paper's sizing optimization (§5 "Sizing the shared regions") consumes
// per-server demand, but a production runtime has no oracle handing those
// in — it has to *measure* them.  The estimator derives each server's pool
// demand from the hotness profile and the segment map: every active
// segment's bytes are attributed to its dominant accessor (the server whose
// recent traffic on it is largest), falling back to the segment's home when
// it has no recorded traffic.  Attribution therefore tracks both the
// allocation watermark (segments exist => bytes are wanted) and the access
// pattern (who wants them close).
//
// Two attribution sources (§5 names both profiling mechanisms):
//   * kExactHotness — AccessTracker's decayed per-byte counters (models
//     performance counters; exact but expensive at scale).
//   * kAccessBits   — a shared core::AccessBitSampler's page access bits
//     (cheap, lossy: a scan interval only reveals WHETHER pages were
//     touched).  The sampler is scanned once per epoch by whoever owns the
//     estimator — never by the estimator itself, so several rack-scoped
//     estimators can share one sampler.
//
// Scope: RestrictTo(first, limit) narrows the estimator to one rack's
// servers.  Estimate() then returns entries for scoped servers only and
// attributes only segments whose attributed server falls inside the scope;
// a segment another rack's server dominates is that rack's demand, not
// ours, even when it is homed here.
//
// Raw attributions are EWMA-smoothed in simulated time so one bursty epoch
// cannot whipsaw the solver: smoothed += (1 - exp(-dt/tau)) * (raw -
// smoothed).  The controller's hysteresis handles the residual jitter.
//
// Determinism: servers are visited in id order and all state is derived
// from sim time + simulation state, so repeated runs produce identical
// demand vectors byte-for-byte.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/units.h"
#include "core/access_bits.h"
#include "core/pool_manager.h"
#include "core/sizing.h"

namespace lmp::ctrl {

enum class DemandSource : std::uint8_t { kExactHotness, kAccessBits };

struct EstimatorConfig {
  // EWMA time constant for demand smoothing.  A few controller periods:
  // long enough to ride out bursts, short enough to follow real shifts.
  SimTime time_constant = Milliseconds(50);
  // Provisioning margin applied to the smoothed estimate (1.1 = size the
  // region 10% above measured demand).
  double headroom_factor = 1.0;
  // Attribution input; kAccessBits requires set_access_bits().
  DemandSource source = DemandSource::kExactHotness;
};

class DemandEstimator {
 public:
  // The manager must outlive the estimator.
  explicit DemandEstimator(core::PoolManager* manager,
                           EstimatorConfig config = {});

  // Narrows the estimator to servers [first, limit) — a rack scope.  Must
  // be a non-empty range within the cluster.
  void RestrictTo(cluster::ServerId first, cluster::ServerId limit);
  cluster::ServerId scope_first() const { return scope_first_; }
  cluster::ServerId scope_limit() const { return scope_limit_; }
  bool InScope(cluster::ServerId server) const {
    return server >= scope_first_ && server < scope_limit_;
  }

  // Access-bits input for DemandSource::kAccessBits.  The sampler is
  // shared state owned by the caller; the OWNER scans it (once per epoch),
  // the estimator only reads the last completed interval.
  void set_access_bits(const core::AccessBitSampler* sampler) {
    sampler_ = sampler;
  }
  bool uses_access_bits() const {
    return config_.source == DemandSource::kAccessBits && sampler_ != nullptr;
  }

  // Static per-server inputs the telemetry cannot observe: the private
  // floor (the server's own non-pool working set) and its priority under
  // pressure.  Defaults: floor 0, priority 1.
  void SetPrivateFloor(cluster::ServerId server, Bytes bytes);
  void SetPriority(cluster::ServerId server, double priority);

  // Demand injected by admission-controlled leases, replaced wholesale
  // each epoch (the admission controller owns lease lifecycle).
  void SetLeaseDemand(cluster::ServerId server, Bytes bytes);
  void ClearLeaseDemands();

  // One demand entry per scoped server (id order), EWMA-smoothed as of
  // `now`.  Calling twice at the same `now` is idempotent (dt = 0 folds
  // nothing).
  std::vector<core::ServerDemand> Estimate(SimTime now);

  // Traffic-weighted fraction of recent (decayed) accesses by scoped
  // servers that hit the accessing server's own shared region — the
  // quantity the paper's objective maximizes, observed rather than
  // planned.  1.0 with no recorded traffic.
  double ObservedLocalFraction(SimTime now) const;

  // Same fraction restricted to one server's own accesses: how much of
  // `server`'s recent traffic hit segments homed on `server`.  1.0 when
  // the server has no recorded traffic.  Feeds per-lease SLO accounting
  // (a lease's locality experience is its host server's, not the
  // cluster-wide average).
  double ObservedLocalFraction(SimTime now, cluster::ServerId server) const;

  // Cross-rack pull candidates: active segments homed OUTSIDE the scope
  // (on a peer server, not the pool box) whose dominant accessor is
  // inside it, hottest first (ties by segment id).  What a granted spine
  // budget would localize.
  struct PullCandidate {
    core::SegmentId seg = core::kInvalidSegment;
    cluster::ServerId dst = 0;  // the in-scope dominant accessor
    Bytes size = 0;
    double heat = 0;
  };
  std::vector<PullCandidate> PullCandidates(SimTime now) const;
  // Total bytes across PullCandidates — the rack summary's
  // remote-hot-bytes input to the global coordinator.
  Bytes RemoteHotBytes(SimTime now) const;

  // Last smoothed organic (non-lease) demand, summed over scoped servers;
  // the admission controller subtracts this from capacity to get headroom.
  Bytes SmoothedOrganicDemand() const;

  const EstimatorConfig& config() const { return config_; }

 private:
  struct PerServer {
    Bytes private_floor = 0;
    double priority = 1.0;
    Bytes lease_demand = 0;
    double smoothed = 0;   // EWMA of raw attributed bytes
    SimTime updated = -1;  // < 0: no observation yet
  };

  PerServer& state(cluster::ServerId server);
  // Attributes one segment to a server via the configured source; false
  // when nobody has touched it in the observation window.
  bool Attribute(const core::SegmentInfo& info, SimTime now,
                 cluster::ServerId* who, double* heat) const;

  core::PoolManager* manager_;
  EstimatorConfig config_;
  const core::AccessBitSampler* sampler_ = nullptr;
  cluster::ServerId scope_first_ = 0;
  cluster::ServerId scope_limit_ = 0;
  std::vector<PerServer> servers_;
};

}  // namespace lmp::ctrl
