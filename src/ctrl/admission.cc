#include "ctrl/admission.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/trace.h"
#include "core/pool_manager.h"

namespace lmp::ctrl {

std::string_view LeaseStateName(LeaseState state) {
  switch (state) {
    case LeaseState::kActive:
      return "active";
    case LeaseState::kQueued:
      return "queued";
    case LeaseState::kReleased:
      return "released";
  }
  return "unknown";
}

AdmissionController::AdmissionController(Bytes capacity)
    : capacity_(capacity) {}

void AdmissionController::set_metrics(MetricsRegistry* registry) {
  LMP_CHECK(registry != nullptr);
  metrics_ = registry;
}

void AdmissionController::set_trace(trace::TraceCollector* collector,
                                    std::function<SimTime()> clock) {
  trace_ = collector;
  clock_ = std::move(clock);
}

Bytes AdmissionController::active_bytes() const {
  Bytes sum = 0;
  for (const auto& [id, lease] : leases_) {
    if (lease.state == LeaseState::kActive) sum += lease.spec.bytes;
  }
  return sum;
}

Bytes AdmissionController::queued_bytes() const {
  Bytes sum = 0;
  for (const auto& [id, lease] : leases_) {
    if (lease.state == LeaseState::kQueued) sum += lease.spec.bytes;
  }
  return sum;
}

Bytes AdmissionController::headroom() const {
  const Bytes committed = organic_ + active_bytes();
  return committed >= capacity_ ? 0 : capacity_ - committed;
}

void AdmissionController::Emit(std::string_view what, const Lease& lease) {
  if (trace_ == nullptr) return;
  const SimTime now = clock_ ? clock_() : 0;
  trace_->Instant(trace::Category::kCtrl, what, now,
                  {trace::Arg("lease", lease.id),
                   trace::Arg("tenant", lease.spec.name),
                   trace::Arg("bytes", lease.spec.bytes),
                   trace::Arg("priority", lease.spec.priority),
                   trace::Arg("state", LeaseStateName(lease.state))});
}

bool AdmissionController::Activate(Lease& lease) {
  if (lease.spec.bytes > headroom()) return false;
  lease.state = LeaseState::kActive;
  lease.server = hint_ ? hint_(lease.spec)
                       : lease.spec.preferred.value_or(0);
  return true;
}

void AdmissionController::PreemptToFit(Bytes needed, double above_priority) {
  // Cheapest victims first: lowest priority, then most recently admitted
  // (the longest-standing lease of a given priority is preempted last).
  std::vector<Lease*> victims;
  for (auto& [id, lease] : leases_) {
    if (lease.state == LeaseState::kActive &&
        lease.spec.priority < above_priority) {
      victims.push_back(&lease);
    }
  }
  std::sort(victims.begin(), victims.end(), [](const Lease* a,
                                               const Lease* b) {
    return a->spec.priority == b->spec.priority
               ? a->id > b->id
               : a->spec.priority < b->spec.priority;
  });
  Bytes freed = 0;
  for (Lease* v : victims) {
    if (freed >= needed) break;
    v->state = LeaseState::kQueued;
    freed += v->spec.bytes;
    ++stats_.preempted;
    metrics_->Increment("ctrl.admission.preempted");
    Emit("lease_preempted", *v);
  }
}

void AdmissionController::PromoteQueued() {
  // Highest priority first, then arrival (id) order.  Any queued lease
  // that fits the remaining headroom activates — a small low-priority
  // tenant is not held hostage behind a large high-priority one.
  std::vector<Lease*> waiting;
  for (auto& [id, lease] : leases_) {
    if (lease.state == LeaseState::kQueued) waiting.push_back(&lease);
  }
  std::sort(waiting.begin(), waiting.end(), [](const Lease* a,
                                               const Lease* b) {
    return a->spec.priority == b->spec.priority
               ? a->id < b->id
               : a->spec.priority > b->spec.priority;
  });
  for (Lease* lease : waiting) {
    if (Activate(*lease)) {
      ++stats_.promoted;
      metrics_->Increment("ctrl.admission.promoted");
      Emit("lease_promoted", *lease);
    }
  }
  ExportGauges();
}

StatusOr<Lease> AdmissionController::RequestAdmission(const TenantSpec& spec) {
  ++stats_.requests;
  metrics_->Increment("ctrl.admission.requests");
  if (spec.bytes == 0) return InvalidArgumentError("lease of zero bytes");
  if (spec.bytes > capacity_) {
    ++stats_.rejected;
    metrics_->Increment("ctrl.admission.rejected");
    return OutOfMemoryError("tenant '" + spec.name + "' wants " +
                            std::to_string(spec.bytes) +
                            " bytes, deployment capacity is " +
                            std::to_string(capacity_));
  }

  Lease lease;
  lease.id = next_id_++;
  lease.spec = spec;

  if (!Activate(lease)) {
    // Full: make room by preempting strictly-lower-priority leases, if
    // that suffices; otherwise park the request.
    const Bytes room = headroom();
    Bytes preemptable = 0;
    for (const auto& [id, other] : leases_) {
      if (other.state == LeaseState::kActive &&
          other.spec.priority < spec.priority) {
        preemptable += other.spec.bytes;
      }
    }
    if (room + preemptable >= spec.bytes) {
      PreemptToFit(spec.bytes - room, spec.priority);
      LMP_CHECK(Activate(lease)) << "preemption freed too little";
    }
  }

  if (lease.state == LeaseState::kActive) {
    ++stats_.admitted;
    metrics_->Increment("ctrl.admission.admitted");
    Emit("lease_admitted", lease);
  } else {
    ++stats_.queued;
    metrics_->Increment("ctrl.admission.queued");
    Emit("lease_queued", lease);
  }
  leases_[lease.id] = lease;
  ExportGauges();
  return lease;
}

Status AdmissionController::Release(LeaseId id) {
  auto it = leases_.find(id);
  if (it == leases_.end()) return NotFoundError("unknown lease");
  if (it->second.state == LeaseState::kReleased) {
    return FailedPreconditionError("lease already released");
  }
  it->second.state = LeaseState::kReleased;
  ++stats_.released;
  metrics_->Increment("ctrl.admission.released");
  Emit("lease_released", it->second);
  PromoteQueued();
  return Status::Ok();
}

StatusOr<Lease> AdmissionController::Get(LeaseId id) const {
  auto it = leases_.find(id);
  if (it == leases_.end()) return NotFoundError("unknown lease");
  return it->second;
}

void AdmissionController::UpdateHeadroom(Bytes capacity,
                                         Bytes organic_demand) {
  capacity_ = capacity;
  organic_ = organic_demand;
  // Capacity shrank under the active set (a crash, organic growth): shed
  // leases lowest-priority-first until the rest fit.
  const Bytes committed = organic_ + active_bytes();
  if (committed > capacity_) {
    PreemptToFit(committed - capacity_,
                 std::numeric_limits<double>::infinity());
  }
  PromoteQueued();
}

std::vector<std::pair<cluster::ServerId, Bytes>>
AdmissionController::DemandByServer() const {
  std::map<cluster::ServerId, Bytes> by_server;
  for (const auto& [id, lease] : leases_) {
    if (lease.state == LeaseState::kActive) {
      by_server[lease.server] += lease.spec.bytes;
    }
  }
  return {by_server.begin(), by_server.end()};
}

core::AllocOptions AdmissionController::AllocOptionsFor(
    const Lease& lease) const {
  core::AllocOptions options;
  if (lease.state == LeaseState::kActive) {
    options.preferred = lease.server;
  } else {
    options.preferred = lease.spec.preferred;
  }
  options.locus = "tenant/" + lease.spec.name;
  options.mobility = lease.spec.mobility;
  options.priority = lease.spec.priority;
  return options;
}

void AdmissionController::ExportGauges() {
  metrics_->SetGauge("ctrl.admission.active_bytes",
                     static_cast<double>(active_bytes()));
  metrics_->SetGauge("ctrl.admission.queued_bytes",
                     static_cast<double>(queued_bytes()));
  metrics_->SetGauge("ctrl.admission.headroom_bytes",
                     static_cast<double>(headroom()));
}

}  // namespace lmp::ctrl
