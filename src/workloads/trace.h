// Synthetic access traces: generators for the canonical patterns
// (sequential, strided, uniform-random, Zipf) and a replayer that drives a
// PoolManager, reporting the locality split the trace experienced.
//
// Traces decouple workload shape from execution: the same trace can be
// replayed before and after a balancing round, against different placement
// policies, or at different private/shared splits — which is how the
// runtime-policy experiments stay comparable.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/server.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/units.h"
#include "core/pool_manager.h"

namespace lmp::workloads {

struct TraceOp {
  cluster::ServerId from = 0;
  std::uint32_t buffer_index = 0;  // into the replayer's buffer list
  Bytes offset = 0;
  Bytes length = 0;
  bool is_write = false;
};

using Trace = std::vector<TraceOp>;

class TraceGenerator {
 public:
  // A full sequential sweep of `buffer_bytes` in `chunk` units.
  static Trace Sequential(cluster::ServerId from, std::uint32_t buffer,
                          Bytes buffer_bytes, Bytes chunk);

  // Every `stride`-th chunk (TLB/prefetcher-hostile pattern).
  static Trace Strided(cluster::ServerId from, std::uint32_t buffer,
                       Bytes buffer_bytes, Bytes chunk, int stride);

  // `count` uniform-random chunks across the buffer.
  static Trace UniformRandom(cluster::ServerId from, std::uint32_t buffer,
                             Bytes buffer_bytes, Bytes chunk,
                             std::size_t count, std::uint64_t seed);

  // `count` Zipf-distributed chunk reads over a set of buffers (hot-key
  // workload): the chunk index within buffer b is also zipfian.
  static Trace ZipfOverBuffers(cluster::ServerId from,
                               std::uint32_t num_buffers, Bytes buffer_bytes,
                               Bytes chunk, double theta, std::size_t count,
                               std::uint64_t seed);

  // Interleaves traces round-robin (concurrent clients approximation).
  static Trace Interleave(const std::vector<Trace>& traces);
};

struct ReplayStats {
  std::uint64_t ops = 0;
  double local_bytes = 0;
  double remote_bytes = 0;

  double Total() const { return local_bytes + remote_bytes; }
  double LocalFraction() const {
    return Total() == 0 ? 1.0 : local_bytes / Total();
  }
};

class TraceReplayer {
 public:
  // `buffers[i]` backs buffer_index i in the trace ops.
  TraceReplayer(core::PoolManager* manager,
                std::vector<core::BufferId> buffers);

  // Replays ops via Touch (hotness recorded; works without backing).
  // Advances simulated time by `op_gap` per op starting at `start`.
  StatusOr<ReplayStats> Replay(const Trace& trace, SimTime start = 0,
                               SimTime op_gap = 0);

 private:
  core::PoolManager* manager_;
  std::vector<core::BufferId> buffers_;
};

}  // namespace lmp::workloads
