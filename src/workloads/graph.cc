#include "workloads/graph.h"

#include <algorithm>
#include <deque>
#include <span>

#include "common/logging.h"

namespace lmp::workloads {

StatusOr<PoolGraph> PoolGraph::FromEdges(
    Pool* pool, std::uint32_t num_vertices,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges,
    cluster::ServerId home) {
  LMP_CHECK(pool != nullptr);
  if (num_vertices == 0) return InvalidArgumentError("empty graph");
  for (const auto& [u, v] : edges) {
    if (u >= num_vertices || v >= num_vertices) {
      return InvalidArgumentError("edge endpoint out of range");
    }
  }

  // Build CSR on the host, then store into the pool.
  std::vector<std::uint64_t> offsets(num_vertices + 1, 0);
  for (const auto& [u, v] : edges) ++offsets[u + 1];
  for (std::uint32_t i = 0; i < num_vertices; ++i) {
    offsets[i + 1] += offsets[i];
  }
  std::vector<std::uint32_t> adjacency(edges.size());
  std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& [u, v] : edges) {
    adjacency[cursor[u]++] = v;
  }

  LMP_ASSIGN_OR_RETURN(
      core::BufferId offsets_buf,
      pool->Allocate(offsets.size() * sizeof(std::uint64_t), home));
  const Bytes adj_bytes =
      std::max<Bytes>(adjacency.size() * sizeof(std::uint32_t), 1);
  LMP_ASSIGN_OR_RETURN(core::BufferId edges_buf,
                       pool->Allocate(adj_bytes, home));

  LMP_RETURN_IF_ERROR(pool->WriteArray<std::uint64_t>(
      home, offsets_buf, 0, std::span<const std::uint64_t>(offsets)));
  if (!adjacency.empty()) {
    LMP_RETURN_IF_ERROR(pool->WriteArray<std::uint32_t>(
        home, edges_buf, 0, std::span<const std::uint32_t>(adjacency)));
  }
  return PoolGraph(pool, num_vertices, edges.size(), offsets_buf, edges_buf);
}

StatusOr<std::vector<std::uint64_t>> PoolGraph::LoadOffsets(
    cluster::ServerId runner, SimTime now) {
  std::vector<std::uint64_t> offsets(n_ + 1);
  LMP_RETURN_IF_ERROR(pool_->ReadArray<std::uint64_t>(
      runner, offsets_, 0, std::span<std::uint64_t>(offsets), now));
  return offsets;
}

StatusOr<std::vector<std::uint32_t>> PoolGraph::LoadNeighbors(
    cluster::ServerId runner, std::uint64_t begin, std::uint64_t end,
    SimTime now) {
  std::vector<std::uint32_t> out(end - begin);
  if (begin == end) return out;
  LMP_RETURN_IF_ERROR(pool_->ReadArray<std::uint32_t>(
      runner, edges_, begin * sizeof(std::uint32_t),
      std::span<std::uint32_t>(out), now));
  return out;
}

StatusOr<std::vector<std::uint32_t>> PoolGraph::Bfs(cluster::ServerId runner,
                                                    std::uint32_t source,
                                                    SimTime now) {
  if (source >= n_) return InvalidArgumentError("source out of range");
  LMP_ASSIGN_OR_RETURN(auto offsets, LoadOffsets(runner, now));

  std::vector<std::uint32_t> depth(n_, UINT32_MAX);
  depth[source] = 0;
  std::deque<std::uint32_t> frontier{source};
  while (!frontier.empty()) {
    const std::uint32_t u = frontier.front();
    frontier.pop_front();
    LMP_ASSIGN_OR_RETURN(
        auto neighbors,
        LoadNeighbors(runner, offsets[u], offsets[u + 1], now));
    for (std::uint32_t v : neighbors) {
      if (depth[v] == UINT32_MAX) {
        depth[v] = depth[u] + 1;
        frontier.push_back(v);
      }
    }
  }
  return depth;
}

StatusOr<std::vector<double>> PoolGraph::PageRank(cluster::ServerId runner,
                                                  int iterations,
                                                  double damping,
                                                  bool shipped, SimTime now) {
  LMP_ASSIGN_OR_RETURN(auto offsets, LoadOffsets(runner, now));
  std::vector<double> rank(n_, 1.0 / n_);
  std::vector<double> next(n_, 0.0);

  for (int it = 0; it < iterations; ++it) {
    // Dangling (zero out-degree) vertices redistribute their mass
    // uniformly, so total rank is conserved at 1.
    double sink_mass = 0;
    for (std::uint32_t u = 0; u < n_; ++u) {
      if (offsets[u + 1] == offsets[u]) sink_mass += rank[u];
    }
    std::fill(next.begin(), next.end(),
              (1.0 - damping) / n_ + damping * sink_mass / n_);
    // Contribution of u to each out-neighbor v: damping * rank[u]/deg(u).
    auto scan = [&](std::uint32_t u,
                    std::span<const std::uint32_t> neighbors) {
      const auto deg = static_cast<double>(neighbors.size());
      if (deg == 0) return;
      const double share = damping * rank[u] / deg;
      for (std::uint32_t v : neighbors) next[v] += share;
    };

    if (!shipped) {
      for (std::uint32_t u = 0; u < n_; ++u) {
        LMP_ASSIGN_OR_RETURN(
            auto neighbors,
            LoadNeighbors(runner, offsets[u], offsets[u + 1], now));
        scan(u, neighbors);
      }
    } else {
      // Walk the adjacency via compute shipping: each hosting server scans
      // its own local share.  The chunk's buffer offset positions it in the
      // global edge array, from which the source vertex is recovered by
      // binary search over the CSR offsets.
      LMP_ASSIGN_OR_RETURN(
          double total,
          pool_->shipper().ShipAndReduce(
              edges_, 0, m_ * sizeof(std::uint32_t),
              [&](cluster::ServerId, Bytes chunk_off,
                  std::span<const std::byte> chunk) {
                const auto* vals =
                    reinterpret_cast<const std::uint32_t*>(chunk.data());
                const std::size_t cnt = chunk.size() / sizeof(std::uint32_t);
                std::uint64_t edge = chunk_off / sizeof(std::uint32_t);
                // First source vertex whose range contains `edge`.
                auto bound = std::upper_bound(offsets.begin(),
                                              offsets.end(), edge);
                auto u = static_cast<std::uint32_t>(
                    (bound - offsets.begin()) - 1);
                for (std::size_t i = 0; i < cnt; ++i, ++edge) {
                  while (u + 1 < offsets.size() && edge >= offsets[u + 1]) {
                    ++u;
                  }
                  const double deg =
                      static_cast<double>(offsets[u + 1] - offsets[u]);
                  next[vals[i]] += damping * rank[u] / deg;
                }
                return 0.0;
              },
              now));
      (void)total;
    }
    rank.swap(next);
  }
  return rank;
}

Status PoolGraph::Release() {
  LMP_RETURN_IF_ERROR(pool_->Free(offsets_));
  return pool_->Free(edges_);
}

}  // namespace lmp::workloads
