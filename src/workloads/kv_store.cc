#include "workloads/kv_store.h"

#include <bit>
#include <cstring>

#include "common/logging.h"
#include "fabric/link.h"

namespace lmp::workloads {

Status PoolKvStore::CheckKey(std::uint64_t key) {
  if (key > kMaxKey) {
    return InvalidArgumentError("key wraps onto a record-tag sentinel");
  }
  return Status::Ok();
}

std::uint64_t PoolKvStore::Hash(std::uint64_t key) {
  // SplitMix64 finalizer: strong enough for table distribution.
  std::uint64_t z = key + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

StatusOr<PoolKvStore> PoolKvStore::Create(Pool* pool, std::uint64_t capacity,
                                          cluster::ServerId home) {
  LMP_CHECK(pool != nullptr);
  if (capacity == 0) return InvalidArgumentError("empty store");
  const std::uint64_t buckets = std::bit_ceil(capacity * 2);  // load <= 0.5
  LMP_ASSIGN_OR_RETURN(core::BufferId buffer,
                       pool->Allocate(buckets * sizeof(Record), home));
  // Zero the table so all tags read as empty.
  PoolKvStore store(pool, buffer, buckets);
  const Record zero{};
  for (std::uint64_t b = 0; b < buckets; ++b) {
    LMP_RETURN_IF_ERROR(store.StoreRecord(home, b, zero, 0));
  }
  return store;
}

StatusOr<PoolKvStore::Record> PoolKvStore::LoadRecord(cluster::ServerId from,
                                                      std::uint64_t bucket,
                                                      SimTime now) {
  Record rec;
  LMP_RETURN_IF_ERROR(pool_->manager().Read(
      from, buffer_, bucket * sizeof(Record),
      std::span<std::byte>(reinterpret_cast<std::byte*>(&rec), sizeof(rec)),
      now));
  return rec;
}

Status PoolKvStore::StoreRecord(cluster::ServerId from, std::uint64_t bucket,
                                const Record& rec, SimTime now) {
  return pool_->manager().Write(
      from, buffer_, bucket * sizeof(Record),
      std::span<const std::byte>(
          reinterpret_cast<const std::byte*>(&rec), sizeof(rec)),
      now);
}

Status PoolKvStore::Put(cluster::ServerId from, std::uint64_t key,
                        std::span<const std::byte> value, SimTime now) {
  if (value.size() > kValueSize) {
    return InvalidArgumentError("value exceeds 56 bytes");
  }
  LMP_RETURN_IF_ERROR(CheckKey(key));
  const std::uint64_t tag = key + 2;
  std::uint64_t bucket = Hash(key) & (buckets_ - 1);
  std::optional<std::uint64_t> first_tombstone;
  for (std::uint64_t probe = 0; probe < buckets_; ++probe) {
    ++probes_;
    LMP_ASSIGN_OR_RETURN(Record rec, LoadRecord(from, bucket, now));
    if (rec.tag == tag || rec.tag == 0) {
      const bool inserting = (rec.tag == 0);
      // Prefer reusing an earlier tombstone on insert.
      const std::uint64_t target =
          (inserting && first_tombstone) ? *first_tombstone : bucket;
      Record out;
      out.tag = tag;
      std::memcpy(out.value.data(), value.data(), value.size());
      LMP_RETURN_IF_ERROR(StoreRecord(from, target, out, now));
      if (inserting) ++size_;
      return Status::Ok();
    }
    if (rec.tag == 1 && !first_tombstone) first_tombstone = bucket;
    bucket = (bucket + 1) & (buckets_ - 1);
  }
  if (first_tombstone) {
    Record out;
    out.tag = tag;
    std::memcpy(out.value.data(), value.data(), value.size());
    LMP_RETURN_IF_ERROR(StoreRecord(from, *first_tombstone, out, now));
    ++size_;
    return Status::Ok();
  }
  return OutOfMemoryError("kv table full");
}

StatusOr<PoolKvStore::Value> PoolKvStore::Get(cluster::ServerId from,
                                              std::uint64_t key,
                                              SimTime now) {
  LMP_RETURN_IF_ERROR(CheckKey(key));
  const std::uint64_t tag = key + 2;
  std::uint64_t bucket = Hash(key) & (buckets_ - 1);
  for (std::uint64_t probe = 0; probe < buckets_; ++probe) {
    ++probes_;
    LMP_ASSIGN_OR_RETURN(Record rec, LoadRecord(from, bucket, now));
    if (rec.tag == tag) return rec.value;
    if (rec.tag == 0) break;  // empty slot terminates the probe chain
    bucket = (bucket + 1) & (buckets_ - 1);
  }
  return NotFoundError("key " + std::to_string(key));
}

Status PoolKvStore::Delete(cluster::ServerId from, std::uint64_t key,
                           SimTime now) {
  LMP_RETURN_IF_ERROR(CheckKey(key));
  const std::uint64_t tag = key + 2;
  std::uint64_t bucket = Hash(key) & (buckets_ - 1);
  for (std::uint64_t probe = 0; probe < buckets_; ++probe) {
    ++probes_;
    LMP_ASSIGN_OR_RETURN(Record rec, LoadRecord(from, bucket, now));
    if (rec.tag == tag) {
      rec.tag = 1;  // tombstone
      rec.value.fill(std::byte{0});
      LMP_RETURN_IF_ERROR(StoreRecord(from, bucket, rec, now));
      --size_;
      return Status::Ok();
    }
    if (rec.tag == 0) break;
    bucket = (bucket + 1) & (buckets_ - 1);
  }
  return NotFoundError("key " + std::to_string(key));
}

Status PoolKvStore::PutLocked(core::DistributedLock* lock,
                              cluster::ServerId from, std::uint64_t key,
                              std::span<const std::byte> value, SimTime now,
                              int max_spins, SimTime spin_rtt,
                              SimTime* completed_at) {
  if (lock == nullptr) return InvalidArgumentError("null lock");
  if (spin_rtt <= 0) spin_rtt = fabric::LinkProfile::Link0().min_latency_ns;
  // Each TryLock is a CAS round trip to the coherent region: it costs wall
  // time and directory traffic whether it wins or loses, so losing spins
  // advance the clock instead of retrying at the same instant.
  SimTime clock = now;
  bool held = false;
  for (int spin = 0; spin < max_spins; ++spin) {
    clock += spin_rtt;
    auto held_or = lock->TryLock(static_cast<int>(from));
    if (!held_or.ok()) {
      if (completed_at) *completed_at = clock;
      return held_or.status();
    }
    held = *held_or;
    if (held) break;
  }
  if (!held) {
    if (completed_at) *completed_at = clock;
    return UnavailableError("kv lock held too long");
  }
  const Status put = Put(from, key, value, clock);
  clock += spin_rtt;  // the unlock store pays its round trip too
  if (completed_at) *completed_at = clock;
  LMP_RETURN_IF_ERROR(lock->Unlock(static_cast<int>(from)));
  return put;
}

Status PoolKvStore::Release() { return pool_->Free(buffer_); }

}  // namespace lmp::workloads
