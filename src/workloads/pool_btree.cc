#include "workloads/pool_btree.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace lmp::workloads {

std::uint32_t PoolBtree::NodeBlock::ChildIndexFor(std::uint64_t key) const {
  std::uint32_t i = 0;
  while (i < count && inner_key(i) <= key) ++i;
  return i;
}

StatusOr<PoolBtree> PoolBtree::Create(core::PoolManager* manager,
                                      std::uint32_t max_nodes,
                                      cluster::ServerId home) {
  LMP_CHECK(manager != nullptr);
  if (max_nodes < 2) return InvalidArgumentError("btree arena needs >= 2 nodes");
  LMP_ASSIGN_OR_RETURN(
      core::BufferId buffer,
      manager->Allocate(static_cast<Bytes>(max_nodes) * kNodeBytes, home));
  PoolBtree tree(manager, buffer, max_nodes);
  LMP_ASSIGN_OR_RETURN(const std::uint32_t root, tree.AllocNode());
  NodeBlock leaf;
  leaf.is_leaf = 1;
  LMP_RETURN_IF_ERROR(tree.WriteNode(home, root, leaf, 0));
  tree.root_ = root;
  return tree;
}

StatusOr<PoolBtree::NodeBlock> PoolBtree::ReadNode(cluster::ServerId from,
                                                   std::uint32_t node,
                                                   SimTime now) {
  LMP_CHECK(node < used_nodes_) << "read of unallocated btree node";
  NodeBlock block;
  LMP_RETURN_IF_ERROR(manager_->Read(
      from, buffer_, NodeOffset(node),
      std::span<std::byte>(reinterpret_cast<std::byte*>(&block),
                           sizeof(block)),
      now));
  ++node_reads_;
  return block;
}

Status PoolBtree::WriteNode(cluster::ServerId from, std::uint32_t node,
                            const NodeBlock& block, SimTime now) {
  LMP_CHECK(node < used_nodes_) << "write of unallocated btree node";
  LMP_RETURN_IF_ERROR(manager_->Write(
      from, buffer_, NodeOffset(node),
      std::span<const std::byte>(
          reinterpret_cast<const std::byte*>(&block), sizeof(block)),
      now));
  ++node_writes_;
  return Status::Ok();
}

StatusOr<std::uint32_t> PoolBtree::AllocNode() {
  if (used_nodes_ >= max_nodes_) {
    return OutOfMemoryError("btree arena full (" +
                            std::to_string(max_nodes_) + " nodes)");
  }
  return used_nodes_++;
}

StatusOr<PoolBtree::DescendResult> PoolBtree::DescendStep(
    cluster::ServerId from, std::uint32_t node, std::uint64_t key,
    SimTime now) {
  LMP_ASSIGN_OR_RETURN(const NodeBlock block, ReadNode(from, node, now));
  DescendResult result;
  if (block.is_leaf == 0) {
    result.child = block.inner_child(block.ChildIndexFor(key));
    return result;
  }
  result.leaf = true;
  for (std::uint32_t i = 0; i < block.count; ++i) {
    if (block.leaf_key(i) == key) {
      result.found = true;
      result.value = block.leaf_value(i);
      break;
    }
  }
  return result;
}

StatusOr<PoolBtree::LeafView> PoolBtree::ReadLeafView(cluster::ServerId from,
                                                      std::uint32_t node,
                                                      SimTime now) {
  LMP_ASSIGN_OR_RETURN(const NodeBlock block, ReadNode(from, node, now));
  if (block.is_leaf == 0) return InternalError("scan chain hit inner node");
  LeafView view;
  view.entries.reserve(block.count);
  for (std::uint32_t i = 0; i < block.count; ++i) {
    view.entries.emplace_back(block.leaf_key(i), block.leaf_value(i));
  }
  view.next = block.next;
  return view;
}

StatusOr<PoolBtree::ScanStep> PoolBtree::ScanDescendStep(
    cluster::ServerId from, std::uint32_t node, std::uint64_t key,
    SimTime now) {
  LMP_ASSIGN_OR_RETURN(const NodeBlock block, ReadNode(from, node, now));
  ScanStep step;
  if (block.is_leaf == 0) {
    step.child = block.inner_child(block.ChildIndexFor(key));
    return step;
  }
  step.leaf = true;
  step.view.entries.reserve(block.count);
  for (std::uint32_t i = 0; i < block.count; ++i) {
    step.view.entries.emplace_back(block.leaf_key(i), block.leaf_value(i));
  }
  step.view.next = block.next;
  return step;
}

Status PoolBtree::DescendPath(cluster::ServerId from, std::uint64_t key,
                              SimTime now,
                              std::vector<std::uint32_t>* path) {
  LMP_CHECK(path != nullptr);
  path->clear();
  std::uint32_t node = root_;
  while (true) {
    path->push_back(node);
    LMP_ASSIGN_OR_RETURN(const NodeBlock block, ReadNode(from, node, now));
    if (block.is_leaf != 0) return Status::Ok();
    node = block.inner_child(block.ChildIndexFor(key));
    LMP_CHECK(path->size() <= static_cast<std::size_t>(height_))
        << "btree descent deeper than tree height";
  }
}

Status PoolBtree::InsertAtPath(cluster::ServerId from,
                               const std::vector<std::uint32_t>& path,
                               std::uint64_t key, std::uint64_t value,
                               SimTime now,
                               std::vector<std::uint32_t>* written) {
  if (path.empty()) return InvalidArgumentError("empty btree path");
  const std::uint32_t leaf_idx = path.back();
  LMP_ASSIGN_OR_RETURN(NodeBlock leaf, ReadNode(from, leaf_idx, now));
  if (leaf.is_leaf == 0) return InvalidArgumentError("path ends at inner node");

  // Overwrite in place — never splits, even when the leaf is full.
  for (std::uint32_t i = 0; i < leaf.count; ++i) {
    if (leaf.leaf_key(i) == key) {
      leaf.set_leaf(i, key, value);
      LMP_RETURN_IF_ERROR(WriteNode(from, leaf_idx, leaf, now));
      if (written) written->push_back(leaf_idx);
      return Status::Ok();
    }
  }

  if (leaf.count < kLeafCap) {
    std::uint32_t pos = 0;
    while (pos < leaf.count && leaf.leaf_key(pos) < key) ++pos;
    for (std::uint32_t i = leaf.count; i > pos; --i) {
      leaf.set_leaf(i, leaf.leaf_key(i - 1), leaf.leaf_value(i - 1));
    }
    leaf.set_leaf(pos, key, value);
    ++leaf.count;
    LMP_RETURN_IF_ERROR(WriteNode(from, leaf_idx, leaf, now));
    if (written) written->push_back(leaf_idx);
    ++size_;
    return Status::Ok();
  }

  // Leaf split: gather the kLeafCap + 1 sorted pairs, keep the low half in
  // place, move the high half to a fresh sibling spliced into the chain.
  LMP_ASSIGN_OR_RETURN(const std::uint32_t right_idx, AllocNode());
  ++splits_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs;
  pairs.reserve(kLeafCap + 1);
  for (std::uint32_t i = 0; i < leaf.count; ++i) {
    pairs.emplace_back(leaf.leaf_key(i), leaf.leaf_value(i));
  }
  pairs.emplace_back(key, value);
  std::sort(pairs.begin(), pairs.end());
  const std::uint32_t left_count =
      static_cast<std::uint32_t>(pairs.size() / 2);

  NodeBlock right;
  right.is_leaf = 1;
  right.next = leaf.next;
  right.count = static_cast<std::uint32_t>(pairs.size()) - left_count;
  for (std::uint32_t i = 0; i < right.count; ++i) {
    right.set_leaf(i, pairs[left_count + i].first,
                   pairs[left_count + i].second);
  }

  NodeBlock left;
  left.is_leaf = 1;
  left.next = right_idx;
  left.count = left_count;
  for (std::uint32_t i = 0; i < left_count; ++i) {
    left.set_leaf(i, pairs[i].first, pairs[i].second);
  }

  LMP_RETURN_IF_ERROR(WriteNode(from, right_idx, right, now));
  LMP_RETURN_IF_ERROR(WriteNode(from, leaf_idx, left, now));
  if (written) {
    written->push_back(right_idx);
    written->push_back(leaf_idx);
  }
  ++size_;

  // Promote the separator (the right sibling's smallest key — equal keys
  // descend right) up the recorded path, splitting full ancestors.
  std::uint64_t sep = right.leaf_key(0);
  std::uint32_t new_child = right_idx;
  for (int level = static_cast<int>(path.size()) - 2; level >= 0; --level) {
    const std::uint32_t inner_idx = path[level];
    LMP_ASSIGN_OR_RETURN(NodeBlock inner, ReadNode(from, inner_idx, now));
    if (inner.is_leaf != 0) return InvalidArgumentError("leaf on inner path");

    std::uint32_t pos = 0;
    while (pos < inner.count && inner.inner_key(pos) <= sep) ++pos;
    if (inner.count < kInnerKeyCap) {
      for (std::uint32_t i = inner.count; i > pos; --i) {
        inner.set_inner_key(i, inner.inner_key(i - 1));
        inner.set_inner_child(i + 1, inner.inner_child(i));
      }
      inner.set_inner_key(pos, sep);
      inner.set_inner_child(pos + 1, new_child);
      ++inner.count;
      LMP_RETURN_IF_ERROR(WriteNode(from, inner_idx, inner, now));
      if (written) written->push_back(inner_idx);
      return Status::Ok();
    }

    // Inner split: kInnerKeyCap + 1 keys, +2 children; the median key
    // promotes (it does not stay in either half).
    LMP_ASSIGN_OR_RETURN(const std::uint32_t split_idx, AllocNode());
    ++splits_;
    std::vector<std::uint64_t> keys;
    std::vector<std::uint32_t> children;
    keys.reserve(inner.count + 1);
    children.reserve(inner.count + 2);
    for (std::uint32_t i = 0; i < inner.count; ++i) keys.push_back(inner.inner_key(i));
    for (std::uint32_t i = 0; i <= inner.count; ++i) {
      children.push_back(inner.inner_child(i));
    }
    keys.insert(keys.begin() + pos, sep);
    children.insert(children.begin() + pos + 1, new_child);

    const std::uint32_t mid = static_cast<std::uint32_t>(keys.size() / 2);
    NodeBlock left_inner;
    left_inner.count = mid;
    for (std::uint32_t i = 0; i < mid; ++i) {
      left_inner.set_inner_key(i, keys[i]);
    }
    for (std::uint32_t i = 0; i <= mid; ++i) {
      left_inner.set_inner_child(i, children[i]);
    }
    NodeBlock right_inner;
    right_inner.count = static_cast<std::uint32_t>(keys.size()) - mid - 1;
    for (std::uint32_t i = 0; i < right_inner.count; ++i) {
      right_inner.set_inner_key(i, keys[mid + 1 + i]);
    }
    for (std::uint32_t i = 0; i <= right_inner.count; ++i) {
      right_inner.set_inner_child(i, children[mid + 1 + i]);
    }

    LMP_RETURN_IF_ERROR(WriteNode(from, split_idx, right_inner, now));
    LMP_RETURN_IF_ERROR(WriteNode(from, inner_idx, left_inner, now));
    if (written) {
      written->push_back(split_idx);
      written->push_back(inner_idx);
    }
    sep = keys[mid];
    new_child = split_idx;
  }

  // The split reached the root: grow the tree by one level.
  LMP_ASSIGN_OR_RETURN(const std::uint32_t new_root, AllocNode());
  NodeBlock root;
  root.count = 1;
  root.set_inner_key(0, sep);
  root.set_inner_child(0, path[0]);
  root.set_inner_child(1, new_child);
  LMP_RETURN_IF_ERROR(WriteNode(from, new_root, root, now));
  if (written) written->push_back(new_root);
  root_ = new_root;
  ++height_;
  return Status::Ok();
}

Status PoolBtree::Insert(cluster::ServerId from, std::uint64_t key,
                         std::uint64_t value, SimTime now) {
  std::vector<std::uint32_t> path;
  LMP_RETURN_IF_ERROR(DescendPath(from, key, now, &path));
  return InsertAtPath(from, path, key, value, now, nullptr);
}

StatusOr<std::uint64_t> PoolBtree::Lookup(cluster::ServerId from,
                                          std::uint64_t key, SimTime now) {
  std::uint32_t node = root_;
  while (true) {
    LMP_ASSIGN_OR_RETURN(const DescendResult step,
                         DescendStep(from, node, key, now));
    if (!step.leaf) {
      node = step.child;
      continue;
    }
    if (step.found) return step.value;
    return NotFoundError("key " + std::to_string(key));
  }
}

Status PoolBtree::Erase(cluster::ServerId from, std::uint64_t key,
                        SimTime now) {
  std::vector<std::uint32_t> path;
  LMP_RETURN_IF_ERROR(DescendPath(from, key, now, &path));
  const std::uint32_t leaf_idx = path.back();
  LMP_ASSIGN_OR_RETURN(NodeBlock leaf, ReadNode(from, leaf_idx, now));
  for (std::uint32_t i = 0; i < leaf.count; ++i) {
    if (leaf.leaf_key(i) != key) continue;
    for (std::uint32_t j = i; j + 1 < leaf.count; ++j) {
      leaf.set_leaf(j, leaf.leaf_key(j + 1), leaf.leaf_value(j + 1));
    }
    --leaf.count;
    leaf.set_leaf(leaf.count, 0, 0);
    LMP_RETURN_IF_ERROR(WriteNode(from, leaf_idx, leaf, now));
    --size_;
    return Status::Ok();
  }
  return NotFoundError("key " + std::to_string(key));
}

StatusOr<std::vector<std::pair<std::uint64_t, std::uint64_t>>> PoolBtree::Scan(
    cluster::ServerId from, std::uint64_t start, std::size_t limit,
    SimTime now) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  if (limit == 0) return out;
  std::vector<std::uint32_t> path;
  LMP_RETURN_IF_ERROR(DescendPath(from, start, now, &path));
  std::uint32_t node = path.back();
  while (node != kNilNode && out.size() < limit) {
    LMP_ASSIGN_OR_RETURN(const LeafView view, ReadLeafView(from, node, now));
    for (const auto& [k, v] : view.entries) {
      if (k < start) continue;
      out.emplace_back(k, v);
      if (out.size() == limit) break;
    }
    node = view.next;
  }
  return out;
}

Status PoolBtree::Release() { return manager_->Free(buffer_); }

}  // namespace lmp::workloads
