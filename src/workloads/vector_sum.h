// Functional vector-sum workload over a real lmp::Pool.
//
// The timing-layer twin of this lives in baselines/ (it drives the fluid
// simulator at paper scale).  This one operates on real doubles in a
// backed pool, so tests can verify numerical correctness end-to-end:
// allocate, fill, sum single-server, sum with compute shipping, and check
// both equal the analytically known total.
#pragma once

#include <cstdint>

#include "common/status.h"
#include "common/units.h"
#include "core/lmp.h"

namespace lmp::workloads {

class VectorSum {
 public:
  // Allocates a vector of `count` doubles in `pool`, preferring `home`.
  static StatusOr<VectorSum> Create(Pool* pool, std::uint64_t count,
                                    cluster::ServerId home);

  // Fills with values v[i] = f(i) written by `writer`.
  Status FillLinear(cluster::ServerId writer, double scale = 1.0);

  // Expected sum for FillLinear(scale): scale * n(n-1)/2.
  double ExpectedLinearSum(double scale = 1.0) const;

  // Single-server sum: `runner` reads the whole vector (remote pieces
  // cross the fabric and are recorded as remote accesses).
  StatusOr<double> SumFrom(cluster::ServerId runner, SimTime now = 0);

  // Near-memory sum: shipped to each hosting server (§4.4).
  StatusOr<double> SumShipped(SimTime now = 0);

  core::BufferId buffer() const { return buffer_; }
  std::uint64_t count() const { return count_; }

  Status Release();

 private:
  VectorSum(Pool* pool, core::BufferId buffer, std::uint64_t count)
      : pool_(pool), buffer_(buffer), count_(count) {}

  Pool* pool_;
  core::BufferId buffer_;
  std::uint64_t count_;
};

}  // namespace lmp::workloads
