// PoolGraph: CSR graph analytics over the logical pool.
//
// Stores a directed graph in two pool buffers (offsets + adjacency) and
// runs BFS and PageRank against them.  PageRank has a shipped variant that
// computes each partition's rank contributions at the server hosting that
// part of the adjacency — the graph-analytics face of §4.4's near-memory
// computing.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/lmp.h"

namespace lmp::workloads {

class PoolGraph {
 public:
  // Builds CSR from an edge list over vertices [0, num_vertices).
  static StatusOr<PoolGraph> FromEdges(
      Pool* pool, std::uint32_t num_vertices,
      const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges,
      cluster::ServerId home);

  // Level-synchronous BFS from `source`; returns per-vertex depth
  // (UINT32_MAX when unreachable).
  StatusOr<std::vector<std::uint32_t>> Bfs(cluster::ServerId runner,
                                           std::uint32_t source,
                                           SimTime now = 0);

  // Power-iteration PageRank.  When `shipped`, each hosting server scans
  // its local share of the adjacency.
  StatusOr<std::vector<double>> PageRank(cluster::ServerId runner,
                                         int iterations, double damping,
                                         bool shipped, SimTime now = 0);

  std::uint32_t num_vertices() const { return n_; }
  std::uint64_t num_edges() const { return m_; }
  core::BufferId offsets_buffer() const { return offsets_; }
  core::BufferId edges_buffer() const { return edges_; }

  Status Release();

 private:
  PoolGraph(Pool* pool, std::uint32_t n, std::uint64_t m,
            core::BufferId offsets, core::BufferId edges)
      : pool_(pool), n_(n), m_(m), offsets_(offsets), edges_(edges) {}

  StatusOr<std::vector<std::uint64_t>> LoadOffsets(cluster::ServerId runner,
                                                   SimTime now);
  StatusOr<std::vector<std::uint32_t>> LoadNeighbors(cluster::ServerId runner,
                                                     std::uint64_t begin,
                                                     std::uint64_t end,
                                                     SimTime now);

  Pool* pool_ = nullptr;
  std::uint32_t n_ = 0;
  std::uint64_t m_ = 0;
  core::BufferId offsets_ = core::kInvalidBuffer;
  core::BufferId edges_ = core::kInvalidBuffer;
};

}  // namespace lmp::workloads
