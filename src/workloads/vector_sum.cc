#include "workloads/vector_sum.h"

#include <span>
#include <vector>

#include "common/logging.h"

namespace lmp::workloads {

StatusOr<VectorSum> VectorSum::Create(Pool* pool, std::uint64_t count,
                                      cluster::ServerId home) {
  LMP_CHECK(pool != nullptr);
  if (count == 0) return InvalidArgumentError("empty vector");
  LMP_ASSIGN_OR_RETURN(core::BufferId buffer,
                       pool->Allocate(count * sizeof(double), home));
  return VectorSum(pool, buffer, count);
}

Status VectorSum::FillLinear(cluster::ServerId writer, double scale) {
  // Write in modest batches to keep scratch memory bounded.
  constexpr std::uint64_t kBatch = 64 * 1024;
  std::vector<double> batch;
  for (std::uint64_t start = 0; start < count_; start += kBatch) {
    const std::uint64_t n = std::min(kBatch, count_ - start);
    batch.resize(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      batch[i] = scale * static_cast<double>(start + i);
    }
    LMP_RETURN_IF_ERROR(pool_->WriteArray<double>(
        writer, buffer_, start * sizeof(double),
        std::span<const double>(batch)));
  }
  return Status::Ok();
}

double VectorSum::ExpectedLinearSum(double scale) const {
  const double n = static_cast<double>(count_);
  return scale * n * (n - 1) / 2.0;
}

StatusOr<double> VectorSum::SumFrom(cluster::ServerId runner, SimTime now) {
  constexpr std::uint64_t kBatch = 64 * 1024;
  std::vector<double> batch;
  double sum = 0;
  for (std::uint64_t start = 0; start < count_; start += kBatch) {
    const std::uint64_t n = std::min(kBatch, count_ - start);
    batch.resize(n);
    LMP_RETURN_IF_ERROR(pool_->ReadArray<double>(
        runner, buffer_, start * sizeof(double), std::span<double>(batch),
        now));
    for (double v : batch) sum += v;
  }
  return sum;
}

StatusOr<double> VectorSum::SumShipped(SimTime now) {
  return pool_->shipper().ShipAndReduce(
      buffer_, 0, count_ * sizeof(double),
      [](cluster::ServerId, Bytes, std::span<const std::byte> chunk) {
        double partial = 0;
        const auto* values = reinterpret_cast<const double*>(chunk.data());
        const std::size_t n = chunk.size() / sizeof(double);
        for (std::size_t i = 0; i < n; ++i) partial += values[i];
        return partial;
      },
      now);
}

Status VectorSum::Release() { return pool_->Free(buffer_); }

}  // namespace lmp::workloads
