// PoolBtree: a distributed ordered index whose nodes live in the pool.
//
// The second application §6 inherits from the RDMA stack (after the KV
// store): a B+tree over disaggregated memory, in the shape of the
// sst-elements async B+tree — fixed-size nodes in a remote-memory arena,
// every access a priced pointer chase.  Nodes are 512-byte blocks inside
// one pool buffer, so node placement is segment placement: migration
// re-homes subtrees, drains compact them, crashes lose or fail them over,
// and the hotness profile sees every root→leaf walk.
//
// Two surfaces:
//  * Synchronous functional ops (Insert/Lookup/Erase/Scan) — every node
//    touched goes through PoolManager::Read/Write, so the fuzz tests can
//    interleave structural churn (migrate/compact/crash) with a std::map
//    reference model.
//  * A step API for the request-level engine (src/ops):  DescendStep reads
//    ONE node and names the next hop, ReadLeafView reads one leaf of a
//    scan chain, and InsertAtPath applies a mutation to a previously
//    descended path while reporting which nodes it wrote — so the async
//    driver can price each hop and each write as separate simulator
//    transfers, never advancing on cached nodes.
//
// Deletion is lazy (tombstone-free): keys are removed from leaves, but
// empty leaves stay chained and separators are not rebalanced — standard
// for RDMA-resident trees, where rebalancing costs remote round trips and
// range queries tolerate sparse leaves.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/pool_manager.h"

namespace lmp::workloads {

class PoolBtree {
 public:
  static constexpr Bytes kNodeBytes = 512;
  static constexpr std::uint32_t kNilNode = 0xFFFFFFFFu;
  // 31 key/value pairs per leaf; 30 separators / 31 children per inner.
  static constexpr std::uint32_t kLeafCap = 31;
  static constexpr std::uint32_t kInnerKeyCap = 30;

  // Allocates an arena of `max_nodes` nodes from the pool, preferring
  // `home`, and writes an empty root leaf.  The manager must outlive the
  // tree.
  static StatusOr<PoolBtree> Create(core::PoolManager* manager,
                                    std::uint32_t max_nodes,
                                    cluster::ServerId home);

  // Functional surface ------------------------------------------------------

  // Inserts or overwrites.  kOutOfMemory when a split needs a node and the
  // arena is exhausted.
  Status Insert(cluster::ServerId from, std::uint64_t key,
                std::uint64_t value, SimTime now = 0);

  // kNotFound when absent.
  StatusOr<std::uint64_t> Lookup(cluster::ServerId from, std::uint64_t key,
                                 SimTime now = 0);

  Status Erase(cluster::ServerId from, std::uint64_t key, SimTime now = 0);

  // Up to `limit` key/value pairs with key >= start, in key order.
  StatusOr<std::vector<std::pair<std::uint64_t, std::uint64_t>>> Scan(
      cluster::ServerId from, std::uint64_t start, std::size_t limit,
      SimTime now = 0);

  // Step surface (request/op engine) ---------------------------------------

  struct DescendResult {
    bool leaf = false;           // `node` itself is a leaf
    std::uint32_t child = kNilNode;  // next hop when !leaf
    bool found = false;          // when leaf: key present?
    std::uint64_t value = 0;     // when leaf && found
  };
  // Reads exactly one node and resolves the next hop of a key descent.
  StatusOr<DescendResult> DescendStep(cluster::ServerId from,
                                      std::uint32_t node, std::uint64_t key,
                                      SimTime now = 0);

  struct LeafView {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> entries;
    std::uint32_t next = kNilNode;  // following leaf in the chain
  };
  // Reads exactly one leaf node of the scan chain.
  StatusOr<LeafView> ReadLeafView(cluster::ServerId from, std::uint32_t node,
                                  SimTime now = 0);

  struct ScanStep {
    bool leaf = false;
    std::uint32_t child = kNilNode;  // next hop when !leaf
    LeafView view;                   // when leaf: this node's contents
  };
  // One-read descent step for scans: inner nodes name the child a range
  // starting at `key` descends into; the leaf returns its entries, so scan
  // drivers never pay for the same node twice.
  StatusOr<ScanStep> ScanDescendStep(cluster::ServerId from,
                                     std::uint32_t node, std::uint64_t key,
                                     SimTime now = 0);

  // The root→leaf node path a descent for `key` takes right now.
  Status DescendPath(cluster::ServerId from, std::uint64_t key, SimTime now,
                     std::vector<std::uint32_t>* path);

  // Applies an insert/overwrite at a path previously returned by
  // DescendPath (the caller holds whatever lock keeps it valid).  Appends
  // the index of every node written — leaf, split siblings, touched
  // ancestors, a new root — to `written` (when non-null), so callers can
  // price the write traffic hop by hop.
  Status InsertAtPath(cluster::ServerId from,
                      const std::vector<std::uint32_t>& path,
                      std::uint64_t key, std::uint64_t value, SimTime now,
                      std::vector<std::uint32_t>* written);

  // Introspection -----------------------------------------------------------

  std::uint64_t size() const { return size_; }
  std::uint32_t root() const { return root_; }
  int height() const { return height_; }
  std::uint32_t node_count() const { return used_nodes_; }
  std::uint32_t max_nodes() const { return max_nodes_; }
  core::BufferId buffer() const { return buffer_; }
  Bytes NodeOffset(std::uint32_t node) const { return node * kNodeBytes; }
  std::uint64_t node_reads() const { return node_reads_; }
  std::uint64_t node_writes() const { return node_writes_; }
  std::uint64_t splits() const { return splits_; }

  Status Release();

 private:
  // On-pool node image.  One 512-byte block per node:
  //   header: is_leaf, count, next (leaf chain), pad — 16 bytes
  //   slots:  62 u64 —
  //     leaf:  key(i) = slot[2i], value(i) = slot[2i+1]   (31 pairs)
  //     inner: key(i) = slot[i] (i < 30), child(i) = slot[30+i] (i < 31)
  struct NodeBlock {
    std::uint32_t is_leaf = 0;
    std::uint32_t count = 0;
    std::uint32_t next = kNilNode;
    std::uint32_t pad = 0;
    std::uint64_t slot[62] = {};

    std::uint64_t leaf_key(std::uint32_t i) const { return slot[2 * i]; }
    std::uint64_t leaf_value(std::uint32_t i) const { return slot[2 * i + 1]; }
    void set_leaf(std::uint32_t i, std::uint64_t k, std::uint64_t v) {
      slot[2 * i] = k;
      slot[2 * i + 1] = v;
    }
    std::uint64_t inner_key(std::uint32_t i) const { return slot[i]; }
    std::uint32_t inner_child(std::uint32_t i) const {
      return static_cast<std::uint32_t>(slot[kInnerKeyCap + i]);
    }
    void set_inner_key(std::uint32_t i, std::uint64_t k) { slot[i] = k; }
    void set_inner_child(std::uint32_t i, std::uint32_t c) {
      slot[kInnerKeyCap + i] = c;
    }
    // Child position a key descent takes: number of separators <= key
    // (split promotes the right sibling's smallest key, so equal keys go
    // right).
    std::uint32_t ChildIndexFor(std::uint64_t key) const;
  };
  static_assert(sizeof(NodeBlock) == kNodeBytes);

  PoolBtree(core::PoolManager* manager, core::BufferId buffer,
            std::uint32_t max_nodes)
      : manager_(manager), buffer_(buffer), max_nodes_(max_nodes) {}

  StatusOr<NodeBlock> ReadNode(cluster::ServerId from, std::uint32_t node,
                               SimTime now);
  Status WriteNode(cluster::ServerId from, std::uint32_t node,
                   const NodeBlock& block, SimTime now);
  StatusOr<std::uint32_t> AllocNode();

  core::PoolManager* manager_ = nullptr;
  core::BufferId buffer_ = core::kInvalidBuffer;
  std::uint32_t max_nodes_ = 0;
  std::uint32_t used_nodes_ = 0;
  std::uint32_t root_ = 0;
  int height_ = 1;
  std::uint64_t size_ = 0;
  std::uint64_t node_reads_ = 0;
  std::uint64_t node_writes_ = 0;
  std::uint64_t splits_ = 0;
};

}  // namespace lmp::workloads
