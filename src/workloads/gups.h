// GUPS-style random-access workload (giga-updates per second).
//
// The vector sum is bandwidth-bound; pointer-chasing workloads are
// LATENCY-bound — each core has one dependent access in flight, so
// throughput is cores / average-access-latency.  This is where §4.3's
// loaded-latency ratios (2.8x/3.6x) turn directly into application
// throughput, and where software paging (µs faults) collapses.
//
// Functional layer: real random read-modify-writes over a TypedBuffer
// (correctness + hotness).  Timing layer: ThroughputModel composes the
// deployment's locality mix with the loaded-latency curves.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"
#include "core/typed_buffer.h"
#include "fabric/link.h"

namespace lmp::workloads {

class Gups {
 public:
  // Allocates a table of `count` u64 cells in the pool.
  static StatusOr<Gups> Create(Pool* pool, std::uint64_t count,
                               cluster::ServerId home);

  // Performs `updates` random XOR read-modify-writes from `runner`.
  // Returns the XOR of all values read (a self-checking digest).
  StatusOr<std::uint64_t> Run(cluster::ServerId runner,
                              std::uint64_t updates, std::uint64_t seed,
                              SimTime now = 0);

  // Verifies the table against a replayed update sequence.
  StatusOr<bool> Verify(cluster::ServerId runner, std::uint64_t updates,
                        std::uint64_t seed);

  TypedBuffer<std::uint64_t>& table() { return table_; }
  Status Release() { return table_.Release(); }

 private:
  explicit Gups(TypedBuffer<std::uint64_t> table)
      : table_(std::move(table)) {}

  TypedBuffer<std::uint64_t> table_;
};

// Timing model for dependent random access: one outstanding access per
// core (no MLP — the pessimistic bound the paper's latency discussion
// implies).  Throughput in updates/s for a table with `local_fraction`
// resolving locally and the rest over `link`, under full load.
struct GupsThroughputModel {
  int cores = 14;
  double local_fraction = 0;
  fabric::LinkProfile local = fabric::LinkProfile::LocalDram();
  fabric::LinkProfile link = fabric::LinkProfile::Link0();
  // Extra per-access software cost (0 for CXL; ~fault cost for paging).
  SimTime software_overhead_ns = 0;

  double AvgLatencyNs() const {
    const double local_ns = local.LoadedLatency(1.0);
    const double remote_ns =
        link.LoadedLatency(1.0) + software_overhead_ns;
    return local_fraction * local_ns +
           (1.0 - local_fraction) * remote_ns;
  }
  // Million updates per second across all cores.
  double Mups() const { return cores * 1e3 / AvgLatencyNs(); }
};

}  // namespace lmp::workloads
