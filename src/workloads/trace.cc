#include "workloads/trace.h"

#include <algorithm>

#include "common/logging.h"

namespace lmp::workloads {

Trace TraceGenerator::Sequential(cluster::ServerId from,
                                 std::uint32_t buffer, Bytes buffer_bytes,
                                 Bytes chunk) {
  LMP_CHECK(chunk > 0);
  Trace trace;
  for (Bytes off = 0; off < buffer_bytes; off += chunk) {
    trace.push_back(TraceOp{from, buffer, off,
                            std::min(chunk, buffer_bytes - off), false});
  }
  return trace;
}

Trace TraceGenerator::Strided(cluster::ServerId from, std::uint32_t buffer,
                              Bytes buffer_bytes, Bytes chunk, int stride) {
  LMP_CHECK(chunk > 0 && stride > 0);
  Trace trace;
  for (Bytes off = 0; off < buffer_bytes;
       off += chunk * static_cast<Bytes>(stride)) {
    trace.push_back(TraceOp{from, buffer, off,
                            std::min(chunk, buffer_bytes - off), false});
  }
  return trace;
}

Trace TraceGenerator::UniformRandom(cluster::ServerId from,
                                    std::uint32_t buffer, Bytes buffer_bytes,
                                    Bytes chunk, std::size_t count,
                                    std::uint64_t seed) {
  LMP_CHECK(chunk > 0 && chunk <= buffer_bytes);
  Rng rng(seed);
  const Bytes slots = buffer_bytes / chunk;
  Trace trace;
  trace.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Bytes off = rng.NextBounded(slots) * chunk;
    trace.push_back(TraceOp{from, buffer, off, chunk, false});
  }
  return trace;
}

Trace TraceGenerator::ZipfOverBuffers(cluster::ServerId from,
                                      std::uint32_t num_buffers,
                                      Bytes buffer_bytes, Bytes chunk,
                                      double theta, std::size_t count,
                                      std::uint64_t seed) {
  LMP_CHECK(num_buffers > 0 && chunk > 0 && chunk <= buffer_bytes);
  ZipfGenerator buffer_zipf(num_buffers, theta, seed);
  ZipfGenerator chunk_zipf(std::max<Bytes>(buffer_bytes / chunk, 1), theta,
                           seed ^ 0x9e3779b9);
  Trace trace;
  trace.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    trace.push_back(TraceOp{
        from, static_cast<std::uint32_t>(buffer_zipf.Next()),
        chunk_zipf.Next() * chunk, chunk, false});
  }
  return trace;
}

Trace TraceGenerator::Interleave(const std::vector<Trace>& traces) {
  Trace out;
  std::size_t total = 0;
  for (const Trace& t : traces) total += t.size();
  out.reserve(total);
  for (std::size_t i = 0; out.size() < total; ++i) {
    for (const Trace& t : traces) {
      if (i < t.size()) out.push_back(t[i]);
    }
  }
  return out;
}

TraceReplayer::TraceReplayer(core::PoolManager* manager,
                             std::vector<core::BufferId> buffers)
    : manager_(manager), buffers_(std::move(buffers)) {
  LMP_CHECK(manager != nullptr);
}

StatusOr<ReplayStats> TraceReplayer::Replay(const Trace& trace,
                                            SimTime start, SimTime op_gap) {
  ReplayStats stats;
  SimTime now = start;
  for (const TraceOp& op : trace) {
    if (op.buffer_index >= buffers_.size()) {
      return InvalidArgumentError("trace references unknown buffer");
    }
    const core::BufferId buffer = buffers_[op.buffer_index];
    LMP_ASSIGN_OR_RETURN(auto spans,
                         manager_->Spans(buffer, op.offset, op.length));
    for (const core::LocatedSpan& s : spans) {
      if (!s.location.is_pool() && s.location.server == op.from) {
        stats.local_bytes += static_cast<double>(s.bytes);
      } else {
        stats.remote_bytes += static_cast<double>(s.bytes);
      }
    }
    LMP_RETURN_IF_ERROR(
        manager_->Touch(op.from, buffer, op.offset, op.length, now));
    ++stats.ops;
    now += op_gap;
  }
  return stats;
}

}  // namespace lmp::workloads
