// PoolKvStore: a key-value store whose table lives in the logical pool.
//
// This is the kind of application §6 says LMPs should inherit from the
// RDMA literature (FaRM-style KV stores), restated over load/store pool
// access.  The table is open-addressed with linear probing over fixed
// 64-byte records in one pool buffer; any server can Put/Get, and every
// access flows through the pool manager so the hotness profile (and thus
// the migration engine) sees the true access pattern — the kv_cache
// example uses exactly that to pull a hot shard local.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>

#include "common/status.h"
#include "core/lmp.h"

namespace lmp::workloads {

class PoolKvStore {
 public:
  static constexpr std::size_t kValueSize = 56;
  using Value = std::array<std::byte, kValueSize>;
  // Record tags are key+2 so 0/1 can mark empty/tombstone; the top two keys
  // would wrap onto those sentinels (a live record indistinguishable from
  // an empty or deleted slot — clobbered on the next colliding Put).  All
  // operations reject them with kInvalidArgument.
  static constexpr std::uint64_t kMaxKey = ~0ull - 2;

  // Capacity is rounded up to a power of two bucket count.
  static StatusOr<PoolKvStore> Create(Pool* pool, std::uint64_t capacity,
                                      cluster::ServerId home);

  // Inserts or overwrites.  Fails with kOutOfMemory when the table is full.
  Status Put(cluster::ServerId from, std::uint64_t key,
             std::span<const std::byte> value, SimTime now = 0);

  // kNotFound when absent.
  StatusOr<Value> Get(cluster::ServerId from, std::uint64_t key,
                      SimTime now = 0);

  Status Delete(cluster::ServerId from, std::uint64_t key, SimTime now = 0);

  // Multi-writer safe Put: serializes the mutation through a lock in the
  // pool's coherent region (§3.2 — coordination is exactly what the small
  // coherent slice exists for).  Spins on TryLock up to `max_spins`;
  // returns kUnavailable if the lock never frees (a wedged peer).
  //
  // Time model: every TryLock attempt — successful or not — is a CAS round
  // trip to the coherent region and costs `spin_rtt` of simulated time
  // (<= 0 uses Link0's unloaded round trip), as does the final unlock.  The
  // put itself runs at the advanced clock, so contention shows up in the
  // hotness profile's timestamps; `completed_at` (optional) reports when
  // the call — including a kUnavailable timeout, which takes
  // max_spins * spin_rtt, never zero time — finished.
  Status PutLocked(core::DistributedLock* lock, cluster::ServerId from,
                   std::uint64_t key, std::span<const std::byte> value,
                   SimTime now = 0, int max_spins = 1000,
                   SimTime spin_rtt = 0, SimTime* completed_at = nullptr);

  std::uint64_t size() const { return size_; }
  std::uint64_t bucket_count() const { return buckets_; }
  core::BufferId buffer() const { return buffer_; }
  std::uint64_t total_probes() const { return probes_; }

  Status Release();

 private:
  // 64-byte record: 8-byte tag + 56-byte value.  Tag 0 = empty,
  // 1 = tombstone, otherwise key+2.
  struct Record {
    std::uint64_t tag = 0;
    Value value{};
  };
  static_assert(sizeof(Record) == 64);

  PoolKvStore(Pool* pool, core::BufferId buffer, std::uint64_t buckets)
      : pool_(pool), buffer_(buffer), buckets_(buckets) {}

  static std::uint64_t Hash(std::uint64_t key);
  static Status CheckKey(std::uint64_t key);
  StatusOr<Record> LoadRecord(cluster::ServerId from, std::uint64_t bucket,
                              SimTime now);
  Status StoreRecord(cluster::ServerId from, std::uint64_t bucket,
                     const Record& rec, SimTime now);

  Pool* pool_ = nullptr;
  core::BufferId buffer_ = core::kInvalidBuffer;
  std::uint64_t buckets_ = 0;
  std::uint64_t size_ = 0;
  std::uint64_t probes_ = 0;
};

}  // namespace lmp::workloads
