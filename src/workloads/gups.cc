#include "workloads/gups.h"

namespace lmp::workloads {

StatusOr<Gups> Gups::Create(Pool* pool, std::uint64_t count,
                            cluster::ServerId home) {
  LMP_ASSIGN_OR_RETURN(auto table, TypedBuffer<std::uint64_t>::Create(
                                       pool, count, home));
  return Gups(std::move(table));
}

StatusOr<std::uint64_t> Gups::Run(cluster::ServerId runner,
                                  std::uint64_t updates, std::uint64_t seed,
                                  SimTime now) {
  Rng rng(seed);
  std::uint64_t digest = 0;
  for (std::uint64_t i = 0; i < updates; ++i) {
    const std::uint64_t index = rng.NextBounded(table_.size());
    const std::uint64_t delta = rng.Next();
    LMP_ASSIGN_OR_RETURN(std::uint64_t value,
                         table_.At(runner, index, now));
    digest ^= value;
    LMP_RETURN_IF_ERROR(table_.Set(runner, index, value ^ delta, now));
  }
  return digest;
}

StatusOr<bool> Gups::Verify(cluster::ServerId runner, std::uint64_t updates,
                            std::uint64_t seed) {
  // Recompute the expected final state on the host and compare.
  std::vector<std::uint64_t> mirror(table_.size(), 0);
  {
    Rng rng(seed);
    for (std::uint64_t i = 0; i < updates; ++i) {
      const std::uint64_t index = rng.NextBounded(table_.size());
      mirror[index] ^= rng.Next();
    }
  }
  std::vector<std::uint64_t> actual(table_.size());
  LMP_RETURN_IF_ERROR(
      table_.ReadRange(runner, 0, std::span<std::uint64_t>(actual)));
  return actual == mirror;
}

}  // namespace lmp::workloads
