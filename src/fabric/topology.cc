#include "fabric/topology.h"

#include <algorithm>
#include <string>

#include "common/trace.h"

namespace lmp::fabric {

void Topology::AddServers(int num_servers) {
  LMP_CHECK(num_servers > 0);
  for (int s = 0; s < num_servers; ++s) {
    const std::string prefix = "server" + std::to_string(s);
    std::vector<sim::ResourceId> cores;
    cores.reserve(machine_.cores_per_server);
    for (int c = 0; c < machine_.cores_per_server; ++c) {
      cores.push_back(sim_->AddResource(
          prefix + ".core" + std::to_string(c), machine_.per_core_bw));
    }
    server_cores_.push_back(std::move(cores));
    server_dram_.push_back(
        sim_->AddResource(prefix + ".dram", machine_.dram_bw));
    server_port_.push_back(
        sim_->AddResource(prefix + ".port", link_.bandwidth));
  }
  server_bw_mult_.assign(server_port_.size(), 1.0);
  server_lat_mult_.assign(server_port_.size(), 1.0);
}

void Topology::AssignRackShards(int servers_per_rack) {
  LMP_CHECK(servers_per_rack > 0) << "rack size must be positive";
  servers_per_rack_ = servers_per_rack;
  num_racks_ = 0;
  for (ServerIndex s = 0; s < server_port_.size(); ++s) {
    const auto rack = static_cast<sim::ShardId>(s / servers_per_rack);
    num_racks_ = std::max(num_racks_, static_cast<int>(rack) + 1);
    for (sim::ResourceId core : server_cores_[s]) {
      sim_->SetResourceShard(core, rack);
    }
    sim_->SetResourceShard(server_dram_[s], rack);
    sim_->SetResourceShard(server_port_[s], rack);
  }
  // Pool resources stay unsharded: pool traffic fans in from every rack, so
  // it belongs on the solver's sequential spill path by construction.
}

void Topology::ProvisionSpine(BytesPerSec uplink_bandwidth) {
  LMP_CHECK(num_racks_ > 0) << "ProvisionSpine requires AssignRackShards";
  LMP_CHECK(rack_uplink_.empty()) << "spine already provisioned";
  LMP_CHECK(uplink_bandwidth > 0);
  rack_uplink_.reserve(num_racks_);
  for (int r = 0; r < num_racks_; ++r) {
    rack_uplink_.push_back(sim_->AddResource(
        "rack" + std::to_string(r) + ".uplink", uplink_bandwidth));
  }
}

sim::ResourceId Topology::rack_uplink(int rack) const {
  LMP_CHECK(rack >= 0 && rack < static_cast<int>(rack_uplink_.size()))
      << "unknown rack uplink " << rack;
  return rack_uplink_[rack];
}

double Topology::SpineBytesServed() const {
  double total = 0;
  for (sim::ResourceId uplink : rack_uplink_) {
    total += sim_->BytesServed(uplink);
  }
  return total;
}

Topology Topology::MakeLogical(sim::FluidSimulator* sim, int num_servers,
                               const LinkProfile& link,
                               const MachineProfile& machine) {
  Topology t(sim, TopologyKind::kLogical, link, machine);
  t.AddServers(num_servers);
  return t;
}

Topology Topology::MakePhysical(sim::FluidSimulator* sim, int num_servers,
                                const LinkProfile& link,
                                const MachineProfile& machine,
                                int pool_ports) {
  LMP_CHECK(pool_ports > 0);
  Topology t(sim, TopologyKind::kPhysical, link, machine);
  t.AddServers(num_servers);
  t.pool_dram_ = sim->AddResource("pool.dram", machine.dram_bw);
  t.has_pool_dram_ = true;
  for (int p = 0; p < pool_ports; ++p) {
    t.pool_port_.push_back(
        sim->AddResource("pool.port" + std::to_string(p), link.bandwidth));
  }
  return t;
}

sim::ResourceId Topology::core(ServerIndex s, int core_idx) const {
  LMP_CHECK(s < server_cores_.size());
  LMP_CHECK(core_idx >= 0 &&
            core_idx < static_cast<int>(server_cores_[s].size()));
  return server_cores_[s][core_idx];
}

sim::ResourceId Topology::dram(ServerIndex s) const {
  LMP_CHECK(s < server_dram_.size());
  return server_dram_[s];
}

sim::ResourceId Topology::port(ServerIndex s) const {
  LMP_CHECK(s < server_port_.size());
  return server_port_[s];
}

sim::ResourceId Topology::pool_dram() const {
  LMP_CHECK(has_pool_dram_) << "logical topology has no pool box";
  return pool_dram_;
}

sim::ResourceId Topology::pool_port(int i) const {
  LMP_CHECK(!pool_port_.empty()) << "logical topology has no pool box";
  return pool_port_[static_cast<std::size_t>(i) % pool_port_.size()];
}

std::vector<sim::ResourceId> Topology::LocalPath(ServerIndex s,
                                                 int core_idx) const {
  return {core(s, core_idx), dram(s)};
}

std::vector<sim::ResourceId> Topology::RemotePath(ServerIndex src,
                                                  int core_idx,
                                                  ServerIndex dst) const {
  LMP_CHECK(src != dst) << "remote path to self; use LocalPath";
  if (has_spine() && CrossRack(src, dst)) {
    return {core(src, core_idx), port(src),      rack_uplink(rack_of(src)),
            rack_uplink(rack_of(dst)), port(dst), dram(dst)};
  }
  return {core(src, core_idx), port(src), port(dst), dram(dst)};
}

std::vector<sim::ResourceId> Topology::PoolPath(ServerIndex src,
                                                int core_idx) const {
  return {core(src, core_idx), port(src),
          pool_port(static_cast<int>(src)), pool_dram()};
}

std::vector<sim::ResourceId> Topology::DmaRemotePath(ServerIndex src,
                                                     ServerIndex dst) const {
  LMP_CHECK(src != dst);
  if (has_spine() && CrossRack(src, dst)) {
    return {port(src), rack_uplink(rack_of(src)), rack_uplink(rack_of(dst)),
            port(dst), dram(dst)};
  }
  return {port(src), port(dst), dram(dst)};
}

std::vector<sim::ResourceId> Topology::DmaPoolPath(ServerIndex src) const {
  return {port(src), pool_port(static_cast<int>(src)), pool_dram()};
}

Status Topology::SetLinkHealth(ServerIndex s, double bandwidth_mult,
                               double latency_mult) {
  if (s >= server_port_.size()) return NotFoundError("unknown server port");
  if (bandwidth_mult <= 0.0 || bandwidth_mult > 1.0) {
    return InvalidArgumentError("bandwidth multiplier must be in (0, 1]");
  }
  if (latency_mult < 1.0) {
    return InvalidArgumentError("latency multiplier must be >= 1");
  }
  server_bw_mult_[s] = bandwidth_mult;
  server_lat_mult_[s] = latency_mult;
  LMP_RETURN_IF_ERROR(
      sim_->SetCapacity(server_port_[s], link_.bandwidth * bandwidth_mult));
  return Status::Ok();
}

Status Topology::RestoreLink(ServerIndex s) {
  return SetLinkHealth(s, 1.0, 1.0);
}

Status Topology::SetPoolLinkHealth(double bandwidth_mult,
                                   double latency_mult) {
  if (pool_port_.empty()) {
    return FailedPreconditionError("logical topology has no pool box");
  }
  if (bandwidth_mult <= 0.0 || bandwidth_mult > 1.0) {
    return InvalidArgumentError("bandwidth multiplier must be in (0, 1]");
  }
  if (latency_mult < 1.0) {
    return InvalidArgumentError("latency multiplier must be >= 1");
  }
  pool_bw_mult_ = bandwidth_mult;
  pool_lat_mult_ = latency_mult;
  for (sim::ResourceId p : pool_port_) {
    LMP_RETURN_IF_ERROR(sim_->SetCapacity(p, link_.bandwidth * bandwidth_mult));
  }
  return Status::Ok();
}

Status Topology::RestorePoolLink() { return SetPoolLinkHealth(1.0, 1.0); }

double Topology::link_bandwidth_mult(ServerIndex s) const {
  LMP_CHECK(s < server_bw_mult_.size());
  return server_bw_mult_[s];
}

double Topology::link_latency_mult(ServerIndex s) const {
  LMP_CHECK(s < server_lat_mult_.size());
  return server_lat_mult_[s];
}

void Topology::SampleUtilization(trace::TraceCollector* collector) const {
  if (collector == nullptr) return;
  const SimTime now = sim_->now();
  auto sample = [&](sim::ResourceId id) {
    collector->Counter(trace::Category::kLink,
                      "util." + sim_->ResourceName(id), now,
                      sim_->Utilization(id));
  };
  for (std::size_t s = 0; s < server_port_.size(); ++s) {
    sample(server_port_[s]);
    sample(server_dram_[s]);
  }
  for (sim::ResourceId p : pool_port_) sample(p);
  for (sim::ResourceId uplink : rack_uplink_) sample(uplink);
  if (has_pool_dram_) sample(pool_dram_);
}

SimTime Topology::LocalLoadedLatency(ServerIndex s) const {
  return machine_.dram.LoadedLatency(sim_->SmoothedUtilization(dram(s)));
}

SimTime Topology::RemoteLoadedLatency(ServerIndex src,
                                      ServerIndex dst) const {
  // Bottleneck utilization along the path determines queueing delay.
  double u = std::max(sim_->SmoothedUtilization(port(src)),
                      std::max(sim_->SmoothedUtilization(port(dst)),
                               sim_->SmoothedUtilization(dram(dst))));
  if (has_spine() && CrossRack(src, dst)) {
    u = std::max(u, std::max(
                        sim_->SmoothedUtilization(rack_uplink(rack_of(src))),
                        sim_->SmoothedUtilization(rack_uplink(rack_of(dst)))));
  }
  // A degraded endpoint stretches the whole path's latency.
  const double lat_mult =
      std::max(link_latency_mult(src), link_latency_mult(dst));
  return link_.LoadedLatency(u) * lat_mult;
}

SimTime Topology::PoolLoadedLatency(ServerIndex src) const {
  const double u = std::max(
      sim_->SmoothedUtilization(port(src)),
      std::max(
          sim_->SmoothedUtilization(pool_port(static_cast<int>(src))),
          sim_->SmoothedUtilization(pool_dram())));
  const double lat_mult = std::max(link_latency_mult(src), pool_lat_mult_);
  return link_.LoadedLatency(u) * lat_mult;
}

}  // namespace lmp::fabric
