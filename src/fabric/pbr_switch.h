// Port-Based Routing (PBR) fabric switch — the CXL 3 mechanism that lets
// Global FAMs scale to a rack (§2.2).
//
// A PbrFabric is a graph of switches and endpoints (servers, pool boxes).
// Each endpoint owns a PBR id; switches hold routing tables mapping PBR id
// to egress port.  Routes are computed by BFS at build time (shortest hop
// count) and then resolved per-message in O(path length).  The fabric also
// instantiates fluid-simulator resources for every inter-switch and
// endpoint link, so multi-rack topologies compose with the rest of the
// timing layer — e.g. a two-rack logical pool where cross-rack pulls pay
// an extra switch hop.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "sim/fluid.h"

namespace lmp::fabric {

using PbrId = std::uint16_t;
using NodeId = std::uint32_t;  // internal graph node (switch or endpoint)

class PbrFabric {
 public:
  // Builds resources inside `sim` (must outlive the fabric).
  explicit PbrFabric(sim::FluidSimulator* sim);

  // Topology construction --------------------------------------------------
  NodeId AddSwitch(std::string name);
  // Endpoints get the next free PBR id.
  StatusOr<NodeId> AddEndpoint(std::string name);
  // Bidirectional link of `bandwidth` between two nodes (one fluid
  // resource per direction).
  Status Link(NodeId a, NodeId b, BytesPerSec bandwidth);
  // Freezes the topology and computes routing tables.  Fails if any
  // endpoint is unreachable from any other.
  Status Commit();

  // Queries ------------------------------------------------------------------
  bool committed() const { return committed_; }
  int switch_count() const;
  int endpoint_count() const;
  StatusOr<PbrId> PbrIdOf(NodeId endpoint) const;

  // Number of switch hops between two endpoints.
  StatusOr<int> HopCount(NodeId from, NodeId to) const;

  // The fluid resources traversed from `from` to `to` (directional).
  // Prepend core/DRAM resources from the caller's machine model.
  StatusOr<std::vector<sim::ResourceId>> Route(NodeId from, NodeId to) const;

  // The egress port a switch uses for a destination (routing-table probe).
  StatusOr<int> EgressPort(NodeId switch_node, PbrId destination) const;

 private:
  struct Edge {
    NodeId peer;
    sim::ResourceId forward;  // this-node -> peer direction
    int port;                 // port index on this node
  };
  struct Node {
    std::string name;
    bool is_endpoint = false;
    PbrId pbr = 0;
    std::vector<Edge> edges;
    // Routing table: destination PBR id -> local port index.
    std::unordered_map<PbrId, int> routes;
  };

  Status BuildRoutesFrom(NodeId endpoint);

  sim::FluidSimulator* sim_;
  std::vector<Node> nodes_;
  std::vector<NodeId> endpoints_;
  PbrId next_pbr_ = 0;
  bool committed_ = false;
};

// Convenience: a dual-rack deployment — `servers_per_rack` endpoints on
// each of two leaf switches joined by an inter-switch trunk.  Returns the
// fabric plus the endpoint node ids rack by rack.
struct DualRackTopology {
  std::unique_ptr<PbrFabric> fabric;
  std::vector<NodeId> rack0;
  std::vector<NodeId> rack1;
};
DualRackTopology MakeDualRack(sim::FluidSimulator* sim, int servers_per_rack,
                              BytesPerSec edge_bandwidth,
                              BytesPerSec trunk_bandwidth);

}  // namespace lmp::fabric
