#include "fabric/cxl.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace lmp::fabric {
namespace {

std::uint32_t DataFlits(Bytes length) {
  // Each flit carries up to 64 payload bytes.
  return static_cast<std::uint32_t>((length + kCacheLine - 1) / kCacheLine);
}

}  // namespace

FlitCost CostOf(const CxlTransaction& txn) {
  FlitCost cost;
  switch (txn.opcode) {
    case CxlOpcode::kMemRd:
      cost.request_flits = 1;                     // M2S Req
      cost.response_flits = DataFlits(txn.length);// S2M DRS data
      break;
    case CxlOpcode::kMemWr:
      cost.request_flits = DataFlits(txn.length); // M2S RwD data
      cost.response_flits = 1;                    // S2M NDR completion
      break;
    case CxlOpcode::kMemInv:
      cost.request_flits = 1;                     // BISnp
      cost.response_flits = 1;                    // BIRsp
      break;
  }
  return cost;
}

FlitChannel::FlitChannel(BytesPerSec raw_bandwidth)
    : raw_bandwidth_(raw_bandwidth) {
  LMP_CHECK(raw_bandwidth > 0);
}

SimTime FlitChannel::Transfer(const CxlTransaction& txn) {
  const FlitCost cost = CostOf(txn);
  flits_ += cost.request_flits + cost.response_flits;
  if (txn.opcode != CxlOpcode::kMemInv) {
    payload_ += static_cast<double>(txn.length);
  }
  // Serialization delay of the wire bytes at raw bandwidth.
  return static_cast<double>(cost.TotalBytes()) / raw_bandwidth_ *
         kNsPerSec;
}

double FlitChannel::Efficiency() const {
  const double wire = static_cast<double>(flits_) * kFlitBytes;
  return wire == 0 ? 1.0 : payload_ / wire;
}

Type3Device::Type3Device(Bytes capacity) : capacity_(capacity) {
  LMP_CHECK(capacity > 0);
}

StatusOr<int> Type3Device::AddRegion(Bytes size) {
  if (size == 0) return InvalidArgumentError("empty region");
  if (next_base_ + size > capacity_) {
    return OutOfMemoryError("device capacity exhausted");
  }
  regions_.push_back(Region{next_base_, size, -1});
  next_base_ += size;
  return static_cast<int>(regions_.size() - 1);
}

Status Type3Device::AssignRegion(int region, int host) {
  if (region < 0 || region >= region_count()) {
    return NotFoundError("no such region");
  }
  regions_[region].host = host;
  return Status::Ok();
}

StatusOr<int> Type3Device::Access(int host, Bytes address,
                                  Bytes length) const {
  if (length == 0) return InvalidArgumentError("empty access");
  for (int r = 0; r < region_count(); ++r) {
    const Region& region = regions_[r];
    if (address >= region.base && address + length <= region.base +
                                                           region.size) {
      if (region.host != -1 && region.host != host) {
        return FailedPreconditionError(
            "region assigned to another host (not a shared FAM)");
      }
      return r;
    }
  }
  return NotFoundError("address not covered by any region");
}

Bytes Type3Device::region_base(int region) const {
  LMP_CHECK(region >= 0 && region < region_count());
  return regions_[region].base;
}

Bytes Type3Device::region_size(int region) const {
  LMP_CHECK(region >= 0 && region < region_count());
  return regions_[region].size;
}

SnoopFilter::SnoopFilter(std::uint64_t capacity_lines)
    : capacity_(capacity_lines) {
  LMP_CHECK(capacity_lines > 0);
}

int SnoopFilter::EvictOne() {
  // Evict the least-recently-tracked line; every holder gets a
  // back-invalidation message.
  auto victim = entries_.begin();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->second.lru_tick < victim->second.lru_tick) victim = it;
  }
  const int holders = std::popcount(victim->second.sharers);
  back_invals_ += holders;
  entries_.erase(victim);
  return holders;
}

SnoopFilter::AccessResult SnoopFilter::OnRead(int host, std::uint64_t line) {
  AccessResult result;
  auto it = entries_.find(line);
  if (it == entries_.end()) {
    if (entries_.size() >= capacity_) {
      result.back_invalidations = EvictOne();
    }
    it = entries_.emplace(line, Entry{}).first;
  }
  it->second.sharers |= 1ull << host;
  it->second.lru_tick = ++tick_;
  return result;
}

SnoopFilter::AccessResult SnoopFilter::OnWrite(int host,
                                               std::uint64_t line) {
  AccessResult result;
  auto it = entries_.find(line);
  if (it == entries_.end()) {
    if (entries_.size() >= capacity_) {
      result.back_invalidations = EvictOne();
    }
    it = entries_.emplace(line, Entry{}).first;
  } else {
    // Invalidate all other sharers.
    const std::uint64_t others = it->second.sharers & ~(1ull << host);
    result.invalidations = std::popcount(others);
  }
  it->second.sharers = 1ull << host;
  it->second.lru_tick = ++tick_;
  return result;
}

bool SnoopFilter::IsTracked(std::uint64_t line) const {
  return entries_.contains(line);
}

}  // namespace lmp::fabric
