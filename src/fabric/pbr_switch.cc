#include "fabric/pbr_switch.h"

#include <deque>
#include <limits>

#include "common/logging.h"

namespace lmp::fabric {

PbrFabric::PbrFabric(sim::FluidSimulator* sim) : sim_(sim) {
  LMP_CHECK(sim != nullptr);
}

NodeId PbrFabric::AddSwitch(std::string name) {
  LMP_CHECK(!committed_) << "topology frozen";
  nodes_.push_back(Node{std::move(name), false, 0, {}, {}});
  return static_cast<NodeId>(nodes_.size() - 1);
}

StatusOr<NodeId> PbrFabric::AddEndpoint(std::string name) {
  if (committed_) return FailedPreconditionError("topology frozen");
  if (next_pbr_ == std::numeric_limits<PbrId>::max()) {
    return OutOfMemoryError("PBR id space exhausted");
  }
  nodes_.push_back(Node{std::move(name), true, next_pbr_++, {}, {}});
  const auto id = static_cast<NodeId>(nodes_.size() - 1);
  endpoints_.push_back(id);
  return id;
}

Status PbrFabric::Link(NodeId a, NodeId b, BytesPerSec bandwidth) {
  if (committed_) return FailedPreconditionError("topology frozen");
  if (a >= nodes_.size() || b >= nodes_.size() || a == b) {
    return InvalidArgumentError("bad link endpoints");
  }
  const sim::ResourceId ab = sim_->AddResource(
      nodes_[a].name + "->" + nodes_[b].name, bandwidth);
  const sim::ResourceId ba = sim_->AddResource(
      nodes_[b].name + "->" + nodes_[a].name, bandwidth);
  nodes_[a].edges.push_back(
      Edge{b, ab, static_cast<int>(nodes_[a].edges.size())});
  nodes_[b].edges.push_back(
      Edge{a, ba, static_cast<int>(nodes_[b].edges.size())});
  return Status::Ok();
}

Status PbrFabric::BuildRoutesFrom(NodeId target) {
  // Reverse BFS from the target endpoint: for every node, the port that
  // leads one hop closer to `target`.
  const PbrId pbr = nodes_[target].pbr;
  std::vector<int> dist(nodes_.size(), -1);
  std::deque<NodeId> queue{target};
  dist[target] = 0;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (const Edge& e : nodes_[u].edges) {
      if (dist[e.peer] != -1) continue;
      dist[e.peer] = dist[u] + 1;
      queue.push_back(e.peer);
    }
  }
  for (NodeId u = 0; u < nodes_.size(); ++u) {
    if (u == target) continue;
    if (dist[u] == -1) {
      if (nodes_[u].is_endpoint) {
        return InvalidArgumentError("endpoint " + nodes_[u].name +
                                    " unreachable from " +
                                    nodes_[target].name);
      }
      continue;  // isolated switch: harmless
    }
    // Pick the first edge that decreases distance.
    for (const Edge& e : nodes_[u].edges) {
      if (dist[e.peer] == dist[u] - 1) {
        nodes_[u].routes[pbr] = e.port;
        break;
      }
    }
  }
  return Status::Ok();
}

Status PbrFabric::Commit() {
  if (committed_) return FailedPreconditionError("already committed");
  if (endpoints_.size() < 2) {
    return FailedPreconditionError("need at least two endpoints");
  }
  for (NodeId e : endpoints_) {
    LMP_RETURN_IF_ERROR(BuildRoutesFrom(e));
  }
  committed_ = true;
  return Status::Ok();
}

int PbrFabric::switch_count() const {
  int n = 0;
  for (const Node& node : nodes_) n += node.is_endpoint ? 0 : 1;
  return n;
}

int PbrFabric::endpoint_count() const {
  return static_cast<int>(endpoints_.size());
}

StatusOr<PbrId> PbrFabric::PbrIdOf(NodeId endpoint) const {
  if (endpoint >= nodes_.size() || !nodes_[endpoint].is_endpoint) {
    return NotFoundError("not an endpoint");
  }
  return nodes_[endpoint].pbr;
}

StatusOr<int> PbrFabric::HopCount(NodeId from, NodeId to) const {
  LMP_ASSIGN_OR_RETURN(auto route, Route(from, to));
  return static_cast<int>(route.size());
}

StatusOr<std::vector<sim::ResourceId>> PbrFabric::Route(NodeId from,
                                                        NodeId to) const {
  if (!committed_) return FailedPreconditionError("commit the fabric first");
  if (from >= nodes_.size() || to >= nodes_.size()) {
    return InvalidArgumentError("bad node id");
  }
  if (!nodes_[from].is_endpoint || !nodes_[to].is_endpoint) {
    return InvalidArgumentError("routes are endpoint-to-endpoint");
  }
  if (from == to) return std::vector<sim::ResourceId>{};

  const PbrId dest = nodes_[to].pbr;
  std::vector<sim::ResourceId> path;
  NodeId cur = from;
  // Walk routing tables; bounded by node count (loop-free by construction).
  for (std::size_t steps = 0; steps <= nodes_.size(); ++steps) {
    if (cur == to) return path;
    auto it = nodes_[cur].routes.find(dest);
    if (it == nodes_[cur].routes.end()) {
      return InternalError("missing route at " + nodes_[cur].name);
    }
    const Edge& e = nodes_[cur].edges[it->second];
    path.push_back(e.forward);
    cur = e.peer;
  }
  return InternalError("routing loop detected");
}

StatusOr<int> PbrFabric::EgressPort(NodeId switch_node,
                                    PbrId destination) const {
  if (switch_node >= nodes_.size()) return NotFoundError("no such node");
  auto it = nodes_[switch_node].routes.find(destination);
  if (it == nodes_[switch_node].routes.end()) {
    return NotFoundError("no route to destination");
  }
  return it->second;
}

DualRackTopology MakeDualRack(sim::FluidSimulator* sim, int servers_per_rack,
                              BytesPerSec edge_bandwidth,
                              BytesPerSec trunk_bandwidth) {
  DualRackTopology topo;
  topo.fabric = std::make_unique<PbrFabric>(sim);
  PbrFabric& fabric = *topo.fabric;
  const NodeId leaf0 = fabric.AddSwitch("leaf0");
  const NodeId leaf1 = fabric.AddSwitch("leaf1");
  LMP_CHECK_OK(fabric.Link(leaf0, leaf1, trunk_bandwidth));
  for (int rack = 0; rack < 2; ++rack) {
    for (int s = 0; s < servers_per_rack; ++s) {
      auto ep = fabric.AddEndpoint("rack" + std::to_string(rack) +
                                   ".server" + std::to_string(s));
      LMP_CHECK(ep.ok());
      LMP_CHECK_OK(fabric.Link(*ep, rack == 0 ? leaf0 : leaf1,
                               edge_bandwidth));
      (rack == 0 ? topo.rack0 : topo.rack1).push_back(*ep);
    }
  }
  LMP_CHECK_OK(fabric.Commit());
  return topo;
}

}  // namespace lmp::fabric
