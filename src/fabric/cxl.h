// CXL.mem transaction-level model (§2.2 of the paper).
//
// CXL is a family of protocols over PCIe; for memory pooling the relevant
// one is CXL.mem: a master-to-subordinate (M2S) / subordinate-to-master
// (S2M) message protocol carried in 68-byte flits.  This module models the
// protocol at transaction granularity:
//
//  * FlitChannel — a link that carries flits; converts message sequences to
//    wire bytes and serialization delay, given the link's raw bandwidth.
//  * Type3Device — a memory expander / FAM: exposes one or more disjoint
//    memory regions (Multiple Logical Devices), serves MemRd/MemWr.
//  * SharedFam — a multi-host shared region with an INCLUSIVE SNOOP FILTER:
//    hardware coherence tracks each cached line; when the filter fills, it
//    evicts an entry by BACK-INVALIDATING the owning host.  §3.2's argument
//    that the coherent region must stay small ("lessens the likelihood of
//    filling CXL's Inclusive Snoop Filter") is directly observable here:
//    the back-invalidation rate explodes once the hosts' aggregate cached
//    footprint exceeds the filter capacity (see bench_snoop_filter).
//
// Message sizes follow the CXL 2/3 spec shape: a read is one M2S Req flit
// out and a 64-byte data response (header + data flits) back; a write is
// an M2S RwD carrying data plus an S2M NDR completion.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace lmp::fabric {

inline constexpr Bytes kFlitBytes = 68;    // 64B payload + 4B CRC/header
inline constexpr Bytes kCacheLine = 64;

enum class CxlOpcode : std::uint8_t {
  kMemRd,        // M2S Req -> S2M DRS (data)
  kMemWr,        // M2S RwD (data)  -> S2M NDR (completion)
  kMemInv,       // back-invalidation (S2M BISnp in CXL 3)
};

struct CxlTransaction {
  CxlOpcode opcode = CxlOpcode::kMemRd;
  Bytes address = 0;
  Bytes length = kCacheLine;
};

// Wire cost of a transaction in each direction, in flits.
struct FlitCost {
  std::uint32_t request_flits = 0;   // host -> device
  std::uint32_t response_flits = 0;  // device -> host
  Bytes TotalBytes() const {
    return static_cast<Bytes>(request_flits + response_flits) * kFlitBytes;
  }
};

FlitCost CostOf(const CxlTransaction& txn);

// A flit channel over a raw link bandwidth.  Tracks cumulative flits and
// converts them to serialization time; the fluid simulator handles
// contention, this handles protocol overhead (the reason "34.5 GB/s" of
// link never yields 34.5 GB/s of payload).
class FlitChannel {
 public:
  explicit FlitChannel(BytesPerSec raw_bandwidth);

  // Accounts one transaction; returns its serialization delay (ns).
  SimTime Transfer(const CxlTransaction& txn);

  // Payload efficiency so far: payload bytes / wire bytes.
  double Efficiency() const;

  // Effective payload bandwidth given protocol overhead.
  BytesPerSec EffectiveBandwidth() const {
    return raw_bandwidth_ * Efficiency();
  }

  std::uint64_t flits_sent() const { return flits_; }
  double payload_bytes() const { return payload_; }

 private:
  BytesPerSec raw_bandwidth_;
  std::uint64_t flits_ = 0;
  double payload_ = 0;
};

// A Type-3 (memory) device exposing disjoint regions, one per logical
// device (MLD), each assignable to a host.
class Type3Device {
 public:
  explicit Type3Device(Bytes capacity);

  // Carves a region of `size`; regions are disjoint and immutable.
  StatusOr<int> AddRegion(Bytes size);

  Status AssignRegion(int region, int host);

  // Validates that `host` may access [address, address+length) and returns
  // the owning region index.
  StatusOr<int> Access(int host, Bytes address, Bytes length) const;

  Bytes capacity() const { return capacity_; }
  int region_count() const { return static_cast<int>(regions_.size()); }
  Bytes region_base(int region) const;
  Bytes region_size(int region) const;

 private:
  struct Region {
    Bytes base = 0;
    Bytes size = 0;
    int host = -1;  // -1 = unassigned (or shared)
  };

  Bytes capacity_;
  Bytes next_base_ = 0;
  std::vector<Region> regions_;
};

// Inclusive snoop filter for a shared FAM region: tracks which host caches
// each line.  Capacity-limited: inserting into a full filter evicts the
// least-recently-tracked line and BACK-INVALIDATES its holders.
class SnoopFilter {
 public:
  // `capacity_lines` = how many distinct lines the filter can track.
  explicit SnoopFilter(std::uint64_t capacity_lines);

  struct AccessResult {
    int invalidations = 0;       // sharers killed by a write
    int back_invalidations = 0;  // evictions due to filter capacity
  };

  // Host caches `line` for reading.
  AccessResult OnRead(int host, std::uint64_t line);
  // Host gains exclusive ownership of `line`.
  AccessResult OnWrite(int host, std::uint64_t line);

  bool IsTracked(std::uint64_t line) const;
  std::uint64_t tracked_lines() const { return entries_.size(); }
  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t total_back_invalidations() const { return back_invals_; }

 private:
  struct Entry {
    std::uint64_t sharers = 0;  // bitmask of caching hosts
    std::uint64_t lru_tick = 0;
  };

  int EvictOne();  // returns holders invalidated

  std::uint64_t capacity_;
  std::uint64_t tick_ = 0;
  std::uint64_t back_invals_ = 0;
  std::unordered_map<std::uint64_t, Entry> entries_;
};

}  // namespace lmp::fabric
