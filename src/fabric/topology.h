// Topology: instantiates the fluid-simulator resources for a deployment and
// hands out resource paths for memory accesses.
//
// Two shapes, matching Figure 1 of the paper:
//   * Logical  — N servers on a fabric switch; the pool is carved out of
//                server DRAM, so remote accesses go server->server.
//   * Physical — N servers plus a separate memory-pool box attached to the
//                switch through `pool_ports` links (the incast point the
//                paper highlights with the thick orange line in Fig. 1a).
//
// Resources per server: one per core (load/store port), one DRAM device,
// one fabric port.  The pool box adds pool DRAM plus its port(s).
#pragma once

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "common/units.h"
#include "fabric/link.h"
#include "sim/fluid.h"

namespace lmp::fabric {

using ServerIndex = std::uint32_t;

struct MachineProfile {
  int cores_per_server = 14;          // Xeon Gold 5120 (paper testbed)
  BytesPerSec per_core_bw = GBps(12); // single-core streaming limit
  BytesPerSec dram_bw = GBps(97);     // Table 1 local bandwidth
  LinkProfile dram = LinkProfile::LocalDram();
};

enum class TopologyKind { kLogical, kPhysical };

class Topology {
 public:
  // Builds the resource graph inside `sim` (which must outlive *this).
  static Topology MakeLogical(sim::FluidSimulator* sim, int num_servers,
                              const LinkProfile& link,
                              const MachineProfile& machine = {});
  static Topology MakePhysical(sim::FluidSimulator* sim, int num_servers,
                               const LinkProfile& link,
                               const MachineProfile& machine = {},
                               int pool_ports = 1);

  TopologyKind kind() const { return kind_; }
  int num_servers() const { return static_cast<int>(server_port_.size()); }
  const MachineProfile& machine() const { return machine_; }
  const LinkProfile& link() const { return link_; }
  bool has_pool() const { return !pool_port_.empty(); }

  // Resource ids ----------------------------------------------------------
  sim::ResourceId core(ServerIndex s, int core_idx) const;
  sim::ResourceId dram(ServerIndex s) const;
  sim::ResourceId port(ServerIndex s) const;
  sim::ResourceId pool_dram() const;
  sim::ResourceId pool_port(int i = 0) const;
  int pool_port_count() const { return static_cast<int>(pool_port_.size()); }

  // Access paths ------------------------------------------------------------
  // Local DRAM read/write by a core.
  std::vector<sim::ResourceId> LocalPath(ServerIndex s, int core_idx) const;
  // Read from another server's shared region (logical pools only).
  std::vector<sim::ResourceId> RemotePath(ServerIndex src, int core_idx,
                                          ServerIndex dst) const;
  // Read from the physical pool box (physical pools only).  The pool port is
  // chosen by server index to spread load across multi-port pools.
  std::vector<sim::ResourceId> PoolPath(ServerIndex src, int core_idx) const;
  // DMA path without a core constraint (migration/fill engines).
  std::vector<sim::ResourceId> DmaRemotePath(ServerIndex src,
                                             ServerIndex dst) const;
  std::vector<sim::ResourceId> DmaPoolPath(ServerIndex src) const;

  // Sharding -----------------------------------------------------------------
  // Tags every per-server resource (cores, DRAM, fabric port) with a rack
  // shard: servers [0, n) form rack 0, [n, 2n) rack 1, and so on.  The
  // solver then re-rates independent racks concurrently when their traffic
  // stays rack-local; the physical pool box (if any) is left unsharded, so
  // pool traffic and anything it touches solves on the sequential spill
  // path.  Call once after construction, before starting flows.
  void AssignRackShards(int servers_per_rack);
  int num_racks() const { return num_racks_; }
  int servers_per_rack() const { return servers_per_rack_; }
  // Rack a server sits in (rack 0 when racks were never assigned).
  int rack_of(ServerIndex s) const {
    return servers_per_rack_ == 0 ? 0
                                  : static_cast<int>(s) / servers_per_rack_;
  }
  bool CrossRack(ServerIndex a, ServerIndex b) const {
    return rack_of(a) != rack_of(b);
  }

  // Spine --------------------------------------------------------------------
  // Provisions the second fabric tier: one uplink resource per rack
  // ("rack<r>.uplink") with `uplink_bandwidth` capacity.  Cross-rack paths
  // then traverse BOTH endpoints' uplinks — the congestion point the
  // hierarchical control plane budgets — while same-rack paths are
  // unchanged.  Uplinks are deliberately left unsharded: a cross-rack flow
  // couples its two racks, which routes those solves onto the sequential
  // spill path by construction.  Requires AssignRackShards first; call
  // before starting flows.
  void ProvisionSpine(BytesPerSec uplink_bandwidth);
  bool has_spine() const { return !rack_uplink_.empty(); }
  sim::ResourceId rack_uplink(int rack) const;
  // Total bytes the spine uplinks have served so far (tenant traffic plus
  // control-plane transfers; each cross-rack flow counts on both ends).
  double SpineBytesServed() const;

  // Latency ------------------------------------------------------------------
  // Loaded read latency for a path class, using the smoothed utilization of
  // the bottleneck resource.
  SimTime LocalLoadedLatency(ServerIndex s) const;
  SimTime RemoteLoadedLatency(ServerIndex src, ServerIndex dst) const;
  SimTime PoolLoadedLatency(ServerIndex src) const;

  // Link health (chaos layer) ------------------------------------------------
  // Scales one server's fabric-port capacity by `bandwidth_mult` (0, 1] and
  // its loaded latency by `latency_mult` >= 1, relative to the HEALTHY
  // profile — calls are absolute, not cumulative, so a repeated degrade
  // does not compound.  The capacity change reprices in-flight flows at the
  // simulator's current time.  RestoreLink resets to 1x/1x.
  Status SetLinkHealth(ServerIndex s, double bandwidth_mult,
                       double latency_mult);
  Status RestoreLink(ServerIndex s);
  // Same for every port of the physical pool box (the Fig. 1a incast point).
  Status SetPoolLinkHealth(double bandwidth_mult, double latency_mult);
  Status RestorePoolLink();

  double link_bandwidth_mult(ServerIndex s) const;
  double link_latency_mult(ServerIndex s) const;
  double pool_link_bandwidth_mult() const { return pool_bw_mult_; }
  bool link_degraded(ServerIndex s) const {
    return link_bandwidth_mult(s) < 1.0 || link_latency_mult(s) > 1.0;
  }

  // Tracing ------------------------------------------------------------------
  // Emits one counter sample per port/DRAM resource (utilization in [0, 1],
  // named "util.<resource>") at the simulator's current time.  Call
  // periodically from a harness to chart link load over a run.
  void SampleUtilization(trace::TraceCollector* collector) const;

 private:
  Topology(sim::FluidSimulator* sim, TopologyKind kind, LinkProfile link,
           MachineProfile machine)
      : sim_(sim), kind_(kind), link_(std::move(link)), machine_(machine) {}

  void AddServers(int num_servers);

  sim::FluidSimulator* sim_;
  TopologyKind kind_;
  LinkProfile link_;
  MachineProfile machine_;

  std::vector<std::vector<sim::ResourceId>> server_cores_;
  std::vector<sim::ResourceId> server_dram_;
  std::vector<sim::ResourceId> server_port_;
  std::vector<sim::ResourceId> pool_port_;
  sim::ResourceId pool_dram_ = 0;
  bool has_pool_dram_ = false;
  int num_racks_ = 0;
  int servers_per_rack_ = 0;
  std::vector<sim::ResourceId> rack_uplink_;

  // Per-port health multipliers (1.0 = pristine), indexed like server_port_.
  std::vector<double> server_bw_mult_;
  std::vector<double> server_lat_mult_;
  double pool_bw_mult_ = 1.0;
  double pool_lat_mult_ = 1.0;
};

}  // namespace lmp::fabric
