// Fabric link profiles and the load-latency model.
//
// The paper emulates a CXL fabric with UPI links and characterises them in
// Table 2; Table 1 adds published CXL numbers from Pond and an FPGA
// prototype.  A LinkProfile captures (min latency, max loaded latency,
// bandwidth); LoadedLatency interpolates between the extremes with a convex
// queueing-style curve so latency rises slowly at low load and sharply near
// saturation — the shape of every measured loaded-latency curve in the
// papers the authors cite.
#pragma once

#include <string>

#include "common/units.h"

namespace lmp::fabric {

struct LinkProfile {
  std::string name;
  SimTime min_latency_ns = 0;   // unloaded round-trip read latency
  SimTime max_latency_ns = 0;   // latency at (near) full load
  BytesPerSec bandwidth = 0;    // per-direction capacity

  // Latency at the given utilization in [0, 1].  Convex: u^2 / (2 - u)
  // normalised so f(0)=0, f(1)=1 (documented in DESIGN.md §2).
  SimTime LoadedLatency(double utilization) const;

  // A degraded copy of this profile: bandwidth scaled by `bandwidth_mult`
  // (0, 1], latencies by `latency_mult` >= 1.  Used by the chaos layer to
  // model a flaky or congested link without inventing a new calibration.
  LinkProfile Degraded(double bandwidth_mult, double latency_mult) const;

  // --- Calibrated profiles (DESIGN.md §5) -------------------------------

  // Table 2, Link0: default UPI. 163–418 ns, 34.5 GB/s.
  static LinkProfile Link0();
  // Table 2, Link1: slowed UPI (0.7 GHz remote uncore). 261–527 ns, 21 GB/s.
  static LinkProfile Link1();
  // Table 1, Pond: CXL via switch, 280 ns, 31 GB/s (PCIe5 x8).
  static LinkProfile PondCxl();
  // Table 1, FPGA: DDR4-behind-PCIe5 x16, 303 ns, 20 GB/s.
  static LinkProfile FpgaCxl();
  // Local DRAM treated as a "link" for uniform latency queries:
  // 82 ns unloaded (Table 1), ~148 ns max loaded (derived from the §4.3
  // claim that max loaded remote is 2.8x / 3.6x max loaded local).
  static LinkProfile LocalDram();
};

}  // namespace lmp::fabric
