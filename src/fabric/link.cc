#include "fabric/link.h"

#include <algorithm>

namespace lmp::fabric {

SimTime LinkProfile::LoadedLatency(double utilization) const {
  const double u = std::clamp(utilization, 0.0, 1.0);
  // Convex interpolation: f(u) = u^2 / (2 - u); f(0)=0, f(0.5)~0.17, f(1)=1.
  const double f = (u * u) / (2.0 - u);
  return min_latency_ns + (max_latency_ns - min_latency_ns) * f;
}

LinkProfile LinkProfile::Degraded(double bandwidth_mult,
                                  double latency_mult) const {
  LinkProfile degraded = *this;
  degraded.name = name + "-degraded";
  degraded.bandwidth = bandwidth * std::clamp(bandwidth_mult, 0.0, 1.0);
  degraded.min_latency_ns = min_latency_ns * std::max(latency_mult, 1.0);
  degraded.max_latency_ns = max_latency_ns * std::max(latency_mult, 1.0);
  return degraded;
}

LinkProfile LinkProfile::Link0() {
  return LinkProfile{"Link0", 163.0, 418.0, GBps(34.5)};
}

LinkProfile LinkProfile::Link1() {
  return LinkProfile{"Link1", 261.0, 527.0, GBps(21.0)};
}

LinkProfile LinkProfile::PondCxl() {
  // Pond reports 280 ns (switch-estimated) and PCIe5 x8 peak of 31 GB/s.
  // Max loaded latency is not published; scale by Link0's loaded/unloaded
  // ratio (418/163 ~ 2.56).
  return LinkProfile{"PondCXL", 280.0, 280.0 * (418.0 / 163.0), GBps(31.0)};
}

LinkProfile LinkProfile::FpgaCxl() {
  return LinkProfile{"FpgaCXL", 303.0, 303.0 * (418.0 / 163.0), GBps(20.0)};
}

LinkProfile LinkProfile::LocalDram() {
  return LinkProfile{"LocalDRAM", 82.0, 148.0, GBps(97.0)};
}

}  // namespace lmp::fabric
