// Deployment cost model for §4.2 ("Lower Entry Barrier").
//
// The paper compares the two architectures by the component inventory each
// needs: both need a fabric switch and one adapter per server, but a
// physical pool additionally needs a chassis (power supply, motherboard,
// CPU or ASIC/FPGA controller), rack space, and extra switch ports — plus
// possibly multiple pool links to avoid incast.  The model also covers the
// paper's two memory scenarios: equal *disaggregated* memory (the physical
// pool needs extra DIMMs for server-local memory) and equal *total* memory
// (physical servers end up with less local memory).
#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"

namespace lmp::cluster {

struct ComponentInventory {
  int servers = 0;
  int fabric_switches = 0;
  int switch_ports = 0;
  int fabric_adapters = 0;
  int pool_chassis = 0;       // PSU + motherboard + controller
  int rack_units = 0;
  int dimms = 0;
  Bytes total_memory = 0;
  Bytes disaggregated_memory = 0;
  Bytes server_local_memory = 0;  // per server

  std::string ToString() const;
};

struct CostModelParams {
  double usd_per_server = 8000;
  double usd_per_switch = 4000;
  double usd_per_switch_port = 300;
  double usd_per_fabric_adapter = 250;
  double usd_per_pool_chassis = 3500;   // PSU + board + controller silicon
  double usd_per_rack_unit = 150;       // amortised space/power per RU
  double usd_per_dimm = 350;            // 32 GiB DDR5 DIMM
  Bytes dimm_capacity = GiB(32);
  int rack_units_per_server = 1;
  int rack_units_per_pool = 2;
};

struct DeploymentCost {
  ComponentInventory inventory;
  double memory_usd = 0;
  double infrastructure_usd = 0;  // everything except DIMMs and servers
  double total_usd = 0;
};

// Logical deployment: `num_servers` hosts, each with `memory_per_server`,
// of which `shared_per_server` joins the pool.
DeploymentCost LogicalDeploymentCost(int num_servers, Bytes memory_per_server,
                                     Bytes shared_per_server,
                                     const CostModelParams& params = {});

// Physical deployment: hosts with `local_per_server` plus a pool box of
// `pool_capacity` attached via `pool_links` switch ports.
DeploymentCost PhysicalDeploymentCost(int num_servers, Bytes local_per_server,
                                      Bytes pool_capacity, int pool_links = 1,
                                      const CostModelParams& params = {});

}  // namespace lmp::cluster
