// Server and PoolDevice: the memory-owning nodes of a deployment.
//
// A Server partitions its DRAM into a private region (OS, process state —
// never pooled) and a shared region that contributes to the logical pool
// (§3.2).  The split is a software knob: ResizeShared() is the mechanism
// behind the paper's "memory flexibility" benefit (§4.5) and is driven at
// runtime by the sizing policy.  A PoolDevice is the physical-pool box: all
// of its memory is pool memory and the ratio is fixed at deployment time —
// exactly the rigidity the paper argues against.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "common/status.h"
#include "common/units.h"
#include "mem/backing_store.h"
#include "mem/frame_allocator.h"

namespace lmp::cluster {

using ServerId = std::uint32_t;

class Server {
 public:
  // `with_backing` materialises real bytes for the shared region (functional
  // tests); timing-only experiments pass false and use pure accounting.
  Server(ServerId id, Bytes total_memory, Bytes shared_memory, int cores,
         Bytes frame_size, bool with_backing);

  ServerId id() const { return id_; }
  int cores() const { return cores_; }
  Bytes total_memory() const { return total_memory_; }
  Bytes shared_bytes() const {
    return shared_alloc_.num_frames() * frame_size_;
  }
  Bytes private_bytes() const { return total_memory_ - shared_bytes(); }
  Bytes frame_size() const { return frame_size_; }

  mem::FrameAllocator& shared_allocator() { return shared_alloc_; }
  const mem::FrameAllocator& shared_allocator() const { return shared_alloc_; }

  bool has_backing() const { return backing_ != nullptr; }
  mem::BackingStore& backing() {
    LMP_CHECK(backing_ != nullptr) << "server has no backing store";
    return *backing_;
  }

  // Adjusts the private/shared split.  Growing succeeds as long as the new
  // shared size fits in total memory; shrinking requires the reclaimed
  // frames to be free (the sizing policy must migrate data out first).
  Status ResizeShared(Bytes new_shared_bytes);

  // Crash / recovery (challenge 5, "Failure domains").  Both report state
  // errors instead of silently re-applying: a double crash (or a recovery
  // of a live host) is a fault-plan bug the chaos layer wants surfaced.
  bool crashed() const { return crashed_; }
  Status Crash();
  Status Recover();

 private:
  ServerId id_;
  Bytes total_memory_;
  Bytes frame_size_;
  int cores_;
  mem::FrameAllocator shared_alloc_;
  std::unique_ptr<mem::BackingStore> backing_;
  bool crashed_ = false;
};

class PoolDevice {
 public:
  PoolDevice(Bytes capacity, Bytes frame_size, bool with_backing);

  Bytes capacity() const { return alloc_.capacity_bytes(); }
  mem::FrameAllocator& allocator() { return alloc_; }
  const mem::FrameAllocator& allocator() const { return alloc_; }

  bool has_backing() const { return backing_ != nullptr; }
  mem::BackingStore& backing() {
    LMP_CHECK(backing_ != nullptr) << "pool has no backing store";
    return *backing_;
  }

  bool crashed() const { return crashed_; }
  Status Crash();
  Status Recover();

 private:
  Bytes frame_size_;
  mem::FrameAllocator alloc_;
  std::unique_ptr<mem::BackingStore> backing_;
  bool crashed_ = false;
};

}  // namespace lmp::cluster
