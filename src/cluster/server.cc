#include "cluster/server.h"

#include "common/logging.h"

namespace lmp::cluster {

Server::Server(ServerId id, Bytes total_memory, Bytes shared_memory,
               int cores, Bytes frame_size, bool with_backing)
    : id_(id),
      total_memory_(total_memory),
      frame_size_(frame_size),
      cores_(cores),
      shared_alloc_(mem::FramesForBytes(shared_memory, frame_size),
                    frame_size) {
  LMP_CHECK(shared_memory <= total_memory)
      << "shared region cannot exceed server DRAM";
  LMP_CHECK(cores > 0);
  if (with_backing) {
    backing_ = std::make_unique<mem::BackingStore>(
        shared_alloc_.num_frames(), frame_size);
  }
}

Status Server::ResizeShared(Bytes new_shared_bytes) {
  if (new_shared_bytes > total_memory_) {
    return InvalidArgumentError("shared region larger than server DRAM");
  }
  const std::uint64_t frames =
      mem::FramesForBytes(new_shared_bytes, frame_size_);
  LMP_RETURN_IF_ERROR(shared_alloc_.Resize(frames));
  if (backing_ != nullptr) backing_->EnsureFrames(frames);
  return Status::Ok();
}

Status Server::Crash() {
  if (crashed_) return FailedPreconditionError("server already crashed");
  crashed_ = true;
  return Status::Ok();
}

Status Server::Recover() {
  if (!crashed_) return FailedPreconditionError("server is not crashed");
  // A recovered host rejoins with its shared region empty: all frames are
  // re-usable but prior contents are gone (the replication / erasure layer
  // is responsible for restoring data).
  crashed_ = false;
  const std::uint64_t frames = shared_alloc_.num_frames();
  shared_alloc_ = mem::FrameAllocator(frames, frame_size_);
  if (backing_ != nullptr) {
    backing_ = std::make_unique<mem::BackingStore>(frames, frame_size_);
  }
  return Status::Ok();
}

PoolDevice::PoolDevice(Bytes capacity, Bytes frame_size, bool with_backing)
    : frame_size_(frame_size),
      alloc_(mem::FramesForBytes(capacity, frame_size), frame_size) {
  if (with_backing) {
    backing_ =
        std::make_unique<mem::BackingStore>(alloc_.num_frames(), frame_size);
  }
}

Status PoolDevice::Crash() {
  if (crashed_) return FailedPreconditionError("pool device already crashed");
  crashed_ = true;
  return Status::Ok();
}

Status PoolDevice::Recover() {
  if (!crashed_) return FailedPreconditionError("pool device is not crashed");
  // Like Server::Recover, the device rejoins empty.
  crashed_ = false;
  const std::uint64_t frames = alloc_.num_frames();
  alloc_ = mem::FrameAllocator(frames, frame_size_);
  if (backing_ != nullptr) {
    backing_ = std::make_unique<mem::BackingStore>(frames, frame_size_);
  }
  return Status::Ok();
}

}  // namespace lmp::cluster
