#include "cluster/cluster.h"

#include "common/logging.h"

namespace lmp::cluster {

ClusterConfig ClusterConfig::PaperLogical() {
  ClusterConfig c;
  c.num_servers = 4;
  c.cores_per_server = 14;
  c.server_total_memory = GiB(24);
  c.server_shared_memory = GiB(24);
  c.physical_pool = false;
  return c;
}

ClusterConfig ClusterConfig::PaperPhysical() {
  ClusterConfig c;
  c.num_servers = 4;
  c.cores_per_server = 14;
  c.server_total_memory = GiB(8);
  c.server_shared_memory = 0;
  c.physical_pool = true;
  c.pool_capacity = GiB(64);
  return c;
}

Cluster::Cluster(const ClusterConfig& config) : config_(config) {
  LMP_CHECK(config.num_servers > 0);
  servers_.reserve(config.num_servers);
  for (int s = 0; s < config.num_servers; ++s) {
    servers_.push_back(std::make_unique<Server>(
        static_cast<ServerId>(s), config.server_total_memory,
        config.server_shared_memory, config.cores_per_server,
        config.frame_size, config.with_backing));
  }
  if (config.physical_pool) {
    pool_.emplace(config.pool_capacity, config.frame_size,
                  config.with_backing);
  }
}

Server& Cluster::server(ServerId id) {
  LMP_CHECK(id < servers_.size());
  return *servers_[id];
}

const Server& Cluster::server(ServerId id) const {
  LMP_CHECK(id < servers_.size());
  return *servers_[id];
}

PoolDevice& Cluster::pool() {
  LMP_CHECK(pool_.has_value()) << "cluster has no physical pool";
  return *pool_;
}

Bytes Cluster::PooledFreeBytes() const {
  if (pool_.has_value()) return pool_->allocator().free_bytes();
  Bytes total = 0;
  for (const auto& s : servers_) {
    if (!s->crashed()) total += s->shared_allocator().free_bytes();
  }
  return total;
}

Bytes Cluster::PooledCapacityBytes() const {
  if (pool_.has_value()) return pool_->capacity();
  Bytes total = 0;
  for (const auto& s : servers_) {
    if (!s->crashed()) total += s->shared_bytes();
  }
  return total;
}

int Cluster::LiveServerCount() const {
  int n = 0;
  for (const auto& s : servers_) {
    if (!s->crashed()) ++n;
  }
  return n;
}

}  // namespace lmp::cluster
