#include "cluster/cost_model.h"

#include <sstream>

namespace lmp::cluster {
namespace {

int DimmsFor(Bytes memory, Bytes dimm_capacity) {
  return static_cast<int>((memory + dimm_capacity - 1) / dimm_capacity);
}

DeploymentCost Price(ComponentInventory inv, const CostModelParams& p) {
  DeploymentCost cost;
  cost.inventory = inv;
  cost.memory_usd = inv.dimms * p.usd_per_dimm;
  cost.infrastructure_usd = inv.fabric_switches * p.usd_per_switch +
                            inv.switch_ports * p.usd_per_switch_port +
                            inv.fabric_adapters * p.usd_per_fabric_adapter +
                            inv.pool_chassis * p.usd_per_pool_chassis +
                            inv.rack_units * p.usd_per_rack_unit;
  cost.total_usd = cost.memory_usd + cost.infrastructure_usd +
                   inv.servers * p.usd_per_server;
  return cost;
}

}  // namespace

std::string ComponentInventory::ToString() const {
  std::ostringstream os;
  os << "servers=" << servers << " switches=" << fabric_switches
     << " ports=" << switch_ports << " adapters=" << fabric_adapters
     << " pool_chassis=" << pool_chassis << " rack_units=" << rack_units
     << " dimms=" << dimms
     << " total_mem_gib=" << total_memory / kGiB
     << " pooled_gib=" << disaggregated_memory / kGiB;
  return os.str();
}

DeploymentCost LogicalDeploymentCost(int num_servers, Bytes memory_per_server,
                                     Bytes shared_per_server,
                                     const CostModelParams& params) {
  ComponentInventory inv;
  inv.servers = num_servers;
  inv.fabric_switches = 1;
  inv.switch_ports = num_servers;          // one port per server, nothing else
  inv.fabric_adapters = num_servers;
  inv.pool_chassis = 0;
  inv.rack_units = num_servers * params.rack_units_per_server;
  inv.dimms =
      num_servers * DimmsFor(memory_per_server, params.dimm_capacity);
  inv.total_memory = static_cast<Bytes>(num_servers) * memory_per_server;
  inv.disaggregated_memory =
      static_cast<Bytes>(num_servers) * shared_per_server;
  inv.server_local_memory = memory_per_server;
  return Price(inv, params);
}

DeploymentCost PhysicalDeploymentCost(int num_servers, Bytes local_per_server,
                                      Bytes pool_capacity, int pool_links,
                                      const CostModelParams& params) {
  ComponentInventory inv;
  inv.servers = num_servers;
  inv.fabric_switches = 1;
  inv.switch_ports = num_servers + pool_links;  // extra port(s) for the pool
  inv.fabric_adapters = num_servers + pool_links;
  inv.pool_chassis = 1;
  inv.rack_units = num_servers * params.rack_units_per_server +
                   params.rack_units_per_pool;
  inv.dimms = num_servers * DimmsFor(local_per_server, params.dimm_capacity) +
              DimmsFor(pool_capacity, params.dimm_capacity);
  inv.total_memory =
      static_cast<Bytes>(num_servers) * local_per_server + pool_capacity;
  inv.disaggregated_memory = pool_capacity;
  inv.server_local_memory = local_per_server;
  return Price(inv, params);
}

}  // namespace lmp::cluster
