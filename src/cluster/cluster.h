// Cluster: assembles servers (and optionally a pool box) from a config.
//
// The two canonical configurations come straight from §4.1 of the paper:
//   ClusterConfig::PaperLogical()  — 4 servers x 24 GB, all shared
//   ClusterConfig::PaperPhysical() — 4 servers x 8 GB local + 64 GB pool box
// Both hold total deployment memory at 96 GB, which is what makes the
// Figure-5 feasibility comparison meaningful.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "cluster/server.h"
#include "common/status.h"
#include "common/units.h"

namespace lmp::cluster {

struct ClusterConfig {
  int num_servers = 4;
  int cores_per_server = 14;
  Bytes server_total_memory = GiB(24);
  Bytes server_shared_memory = GiB(24);  // logical: contribute everything
  bool physical_pool = false;
  Bytes pool_capacity = 0;
  Bytes frame_size = mem::kDefaultFrameSize;
  bool with_backing = false;

  // §4.1 "Memory pool configurations".
  static ClusterConfig PaperLogical();
  static ClusterConfig PaperPhysical();

  Bytes TotalMemory() const {
    return static_cast<Bytes>(num_servers) * server_total_memory +
           pool_capacity;
  }
  Bytes TotalPooledMemory() const {
    return physical_pool
               ? pool_capacity
               : static_cast<Bytes>(num_servers) * server_shared_memory;
  }
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  const ClusterConfig& config() const { return config_; }
  int num_servers() const { return static_cast<int>(servers_.size()); }

  Server& server(ServerId id);
  const Server& server(ServerId id) const;

  bool has_pool() const { return pool_.has_value(); }
  PoolDevice& pool();

  // Aggregate free bytes across every live server's shared region.
  Bytes PooledFreeBytes() const;
  Bytes PooledCapacityBytes() const;
  int LiveServerCount() const;

 private:
  ClusterConfig config_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::optional<PoolDevice> pool_;
};

}  // namespace lmp::cluster
