#include "ops/op_engine.h"

#include <utility>

#include "common/logging.h"

namespace lmp::ops {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kGet:
      return "get";
    case OpKind::kPut:
      return "put";
    case OpKind::kScan:
      return "scan";
    case OpKind::kOther:
      break;
  }
  return "op";
}

OpEngine::OpEngine(sim::FluidSimulator* sim, fabric::Topology* topology,
                   core::PoolManager* manager, Options options)
    : sim_(sim),
      topology_(topology),
      manager_(manager),
      options_(std::move(options)),
      metrics_(options_.metrics != nullptr ? options_.metrics
                                           : &MetricsRegistry::Global()) {
  LMP_CHECK(sim_ != nullptr && topology_ != nullptr && manager_ != nullptr);
  // LinkProfile::min_latency_ns is the unloaded round-trip read latency —
  // exactly the cost of one coherent-region CAS round trip.
  lock_rtt_ = options_.lock_rtt > 0 ? options_.lock_rtt
                                    : topology_->link().min_latency_ns;
  LMP_CHECK(lock_rtt_ > 0) << "lock round trip must cost sim time";
}

OpId OpEngine::Submit(OpKind kind, cluster::ServerId server, int core,
                      Step first) {
  const OpId id = next_id_++;
  Op& op = pending_[id];
  op.id_ = id;
  op.kind_ = kind;
  op.server_ = server;
  op.core_ = core;
  op.submit_time_ = sim_->now();
  // The first step is deferred like every later one, so Submit may be
  // called from anywhere (harness code, completion hooks, other steps)
  // without re-entering the engine.
  sim_->ScheduleAt(sim_->now(), [this, id, step = std::move(first)](SimTime) {
    RunStep(id, step);
  });
  return id;
}

void OpEngine::RunStep(OpId id, const Step& step) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;  // op finished out from under the timer
  step(it->second);
}

void OpEngine::IssueAccess(Op& op, core::BufferId buffer, Bytes offset,
                           Bytes len, double weight, Step next) {
  const OpId id = op.id_;
  auto spans_or = manager_->Spans(buffer, offset, len);
  if (!spans_or.ok()) {
    // The access cannot be priced (segment lost in a crash, stale buffer).
    // Fail the op from the timer wheel so the calling step unwinds first.
    sim_->ScheduleAt(sim_->now(),
                     [this, id, status = spans_or.status()](SimTime) {
                       auto it = pending_.find(id);
                       if (it != pending_.end()) Finish(it->second, status);
                     });
    return;
  }

  const auto src = static_cast<fabric::ServerIndex>(op.server_);
  std::vector<sim::Span> chain;
  chain.reserve(spans_or->size());
  // Bandwidth rides the fluid solver (the span chain below); propagation
  // rides the topology's loaded-latency model, summed per span and applied
  // as a timed delay after the stream drains.  Without it, small accesses
  // under light load price identically wherever the segment is homed — the
  // whole point of a local-fraction lever is that they must not.
  SimTime propagation = 0;
  for (const core::LocatedSpan& ls : *spans_or) {
    std::vector<sim::ResourceId> path;
    if (ls.location.is_pool()) {
      path = topology_->PoolPath(src, op.core_);
      propagation += topology_->PoolLoadedLatency(src);
    } else if (static_cast<fabric::ServerIndex>(ls.location.server) == src) {
      path = topology_->LocalPath(src, op.core_);
      propagation += topology_->LocalLoadedLatency(src);
    } else {
      const auto dst = static_cast<fabric::ServerIndex>(ls.location.server);
      path = topology_->RemotePath(src, op.core_, dst);
      propagation += topology_->RemoteLoadedLatency(src, dst);
    }
    chain.push_back(sim::Span{static_cast<double>(ls.bytes), std::move(path),
                              weight});
  }

  ++op.hops_;
  metrics().Increment(options_.metrics_prefix + ".hops");
  auto stream = std::make_unique<sim::SpanStream>(sim_, std::move(chain));
  stream->set_on_complete(
      [this, id, propagation, step = std::move(next)](sim::SpanStream&) {
        sim_->ScheduleAt(sim_->now() + propagation,
                         [this, id, step](SimTime) { RunStep(id, step); });
      });
  // Replacing the previous stream destroys it; its completion timer (the
  // one that delivered the step now issuing this access) has already fired.
  op.stream_ = std::move(stream);
  op.stream_->Start();
}

void OpEngine::Read(Op& op, core::BufferId buffer, Bytes offset, Bytes len,
                    Step next) {
  IssueAccess(op, buffer, offset, len, /*weight=*/1.0, std::move(next));
}

void OpEngine::Write(Op& op, core::BufferId buffer, Bytes offset, Bytes len,
                     Step next) {
  IssueAccess(op, buffer, offset, len, /*weight=*/1.0, std::move(next));
}

void OpEngine::Acquire(Op& op, core::DistributedLock* lock, Step next) {
  LMP_CHECK(lock != nullptr);
  const OpId id = op.id_;
  // The first attempt also pays a full round trip: the CAS must reach the
  // coherent region's directory before anyone learns it succeeded.
  sim_->ScheduleAfter(lock_rtt_,
                      [this, id, lock, step = std::move(next)](SimTime) {
                        AttemptLock(id, lock, step);
                      });
}

void OpEngine::AttemptLock(OpId id, core::DistributedLock* lock,
                           Step next) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Op& op = it->second;
  auto held_or = lock->TryLock(static_cast<int>(op.server_));
  if (!held_or.ok()) {
    Finish(op, held_or.status());
    return;
  }
  if (*held_or) {
    next(op);
    return;
  }
  ++op.lock_spins_;
  metrics().Increment(options_.metrics_prefix + ".lock_spins");
  if (op.lock_spins_ >= options_.max_lock_spins) {
    Finish(op, UnavailableError("lock held past max_lock_spins"));
    return;
  }
  sim_->ScheduleAfter(lock_rtt_,
                      [this, id, lock, step = std::move(next)](SimTime) {
                        AttemptLock(id, lock, step);
                      });
}

void OpEngine::Release(Op& op, core::DistributedLock* lock, Step next) {
  LMP_CHECK(lock != nullptr);
  const Status st = lock->Unlock(static_cast<int>(op.server_));
  if (!st.ok()) {
    Finish(op, st);
    return;
  }
  Delay(op, lock_rtt_, std::move(next));
}

void OpEngine::Delay(Op& op, SimTime delay, Step next) {
  const OpId id = op.id_;
  sim_->ScheduleAfter(delay, [this, id, step = std::move(next)](SimTime) {
    RunStep(id, step);
  });
}

void OpEngine::Finish(Op& op, Status status) {
  OpResult result;
  result.id = op.id_;
  result.kind = op.kind_;
  result.status = status;
  result.submit_time = op.submit_time_;
  result.finish_time = sim_->now();
  result.hops = op.hops_;
  result.lock_spins = op.lock_spins_;
  pending_.erase(op.id_);  // `op` is dead past this line

  ++completed_;
  metrics().Increment(options_.metrics_prefix + ".completed");
  if (!status.ok()) {
    ++failed_;
    metrics().Increment(options_.metrics_prefix + ".errors");
  } else {
    const auto kind_idx = static_cast<std::size_t>(result.kind);
    if (latency_hist_[kind_idx] == nullptr) {
      latency_hist_[kind_idx] = &metrics().GetHistogram(
          options_.metrics_prefix + "." + OpKindName(result.kind));
    }
    latency_hist_[kind_idx]->Record(
        static_cast<std::uint64_t>(result.finish_time - result.submit_time));
  }
  if (on_complete_) on_complete_(result);
}

Status OpEngine::Drain() {
  while (!pending_.empty() && sim_->Step()) {
  }
  if (!pending_.empty()) {
    return InternalError("op engine drained with " +
                         std::to_string(pending_.size()) +
                         " ops still in flight");
  }
  return Status::Ok();
}

}  // namespace lmp::ops
