#include "ops/btree_ops.h"

#include <memory>
#include <string>
#include <utility>

#include "common/logging.h"

namespace lmp::ops {

using workloads::PoolBtree;

BtreeOpDriver::BtreeOpDriver(OpEngine* engine, PoolBtree* tree,
                             int num_hosts, Options options)
    : engine_(engine), tree_(tree), options_(options) {
  LMP_CHECK(engine_ != nullptr && tree_ != nullptr);
  LMP_CHECK(options_.lock_stripes >= 1);
  // One 8-byte coherent cell per lock stripe, 8-byte coherence granularity
  // so stripes never false-share.
  lock_region_ = std::make_unique<core::CoherentRegion>(
      static_cast<Bytes>(options_.lock_stripes) * 8, 8, num_hosts);
  locks_.reserve(options_.lock_stripes);
  for (int i = 0; i < options_.lock_stripes; ++i) {
    locks_.push_back(std::make_unique<core::DistributedLock>(
        lock_region_.get(), static_cast<Bytes>(i) * 8));
  }
}

OpId BtreeOpDriver::SubmitGet(
    cluster::ServerId server, int core, std::uint64_t key,
    std::function<void(StatusOr<std::uint64_t>)> on_value) {
  return engine_->Submit(
      OpKind::kGet, server, core,
      [this, key, cb = std::move(on_value)](OpEngine::Op& o) {
        GetHop(o, tree_->root(), key, cb);
      });
}

void BtreeOpDriver::GetHop(
    OpEngine::Op& op, std::uint32_t node, std::uint64_t key,
    const std::function<void(StatusOr<std::uint64_t>)>& cb) {
  engine_->Read(
      op, tree_->buffer(), tree_->NodeOffset(node), PoolBtree::kNodeBytes,
      [this, node, key, cb](OpEngine::Op& o) {
        // The transfer landed: take the functional step at this simulated
        // instant (the hotness profile sees the node access now), and
        // resolve the next hop against the segment map as it is NOW — a
        // migration during the transfer changes what the next hop costs.
        auto step = tree_->DescendStep(o.server(), node, key,
                                       engine_->simulator()->now());
        if (!step.ok()) {
          engine_->Finish(o, step.status());
          return;
        }
        if (!step->leaf) {
          GetHop(o, step->child, key, cb);
          return;
        }
        if (step->found) {
          if (cb) cb(step->value);
          engine_->Finish(o);
          return;
        }
        const Status miss = NotFoundError("key " + std::to_string(key));
        if (cb) cb(miss);
        engine_->Finish(o, miss);
      });
}

OpId BtreeOpDriver::SubmitScan(
    cluster::ServerId server, int core, std::uint64_t start,
    std::size_t limit,
    std::function<
        void(const std::vector<std::pair<std::uint64_t, std::uint64_t>>&)>
        on_rows) {
  return engine_->Submit(
      OpKind::kScan, server, core,
      [this, start, limit, cb = std::move(on_rows)](OpEngine::Op& o) {
        auto rows = std::make_shared<
            std::vector<std::pair<std::uint64_t, std::uint64_t>>>();
        ScanHop(o, tree_->root(), start, limit, rows, cb);
      });
}

void BtreeOpDriver::ScanHop(
    OpEngine::Op& op, std::uint32_t node, std::uint64_t start,
    std::size_t limit, RowsPtr rows,
    const std::function<void(
        const std::vector<std::pair<std::uint64_t, std::uint64_t>>&)>& cb) {
  engine_->Read(
      op, tree_->buffer(), tree_->NodeOffset(node), PoolBtree::kNodeBytes,
      [this, node, start, limit, rows, cb](OpEngine::Op& o) {
        auto step = tree_->ScanDescendStep(o.server(), node, start,
                                           engine_->simulator()->now());
        if (!step.ok()) {
          engine_->Finish(o, step.status());
          return;
        }
        if (!step->leaf) {
          ScanHop(o, step->child, start, limit, rows, cb);
          return;
        }
        for (const auto& [k, v] : step->view.entries) {
          if (k < start) continue;
          if (rows->size() == limit) break;
          rows->emplace_back(k, v);
        }
        if (rows->size() < limit && step->view.next != PoolBtree::kNilNode) {
          ConsumeLeaf(o, step->view.next, start, limit, rows, cb);
          return;
        }
        if (cb) cb(*rows);
        engine_->Finish(o);
      });
}

void BtreeOpDriver::ConsumeLeaf(
    OpEngine::Op& op, std::uint32_t node, std::uint64_t start,
    std::size_t limit, RowsPtr rows,
    const std::function<void(
        const std::vector<std::pair<std::uint64_t, std::uint64_t>>&)>& cb) {
  engine_->Read(
      op, tree_->buffer(), tree_->NodeOffset(node), PoolBtree::kNodeBytes,
      [this, node, start, limit, rows, cb](OpEngine::Op& o) {
        auto view = tree_->ReadLeafView(o.server(), node,
                                        engine_->simulator()->now());
        if (!view.ok()) {
          engine_->Finish(o, view.status());
          return;
        }
        for (const auto& [k, v] : view->entries) {
          if (k < start) continue;
          if (rows->size() == limit) break;
          rows->emplace_back(k, v);
        }
        if (rows->size() < limit && view->next != PoolBtree::kNilNode) {
          ConsumeLeaf(o, view->next, start, limit, rows, cb);
          return;
        }
        if (cb) cb(*rows);
        engine_->Finish(o);
      });
}

OpId BtreeOpDriver::SubmitPut(cluster::ServerId server, int core,
                              std::uint64_t key, std::uint64_t value) {
  core::DistributedLock* lock = lock_for(key);
  return engine_->Submit(
      OpKind::kPut, server, core, [this, key, value, lock](OpEngine::Op& o) {
        engine_->Acquire(
            o, lock, [this, key, value, lock](OpEngine::Op& locked) {
              // Holding the stripe: re-descend from the root (the lock is
              // what keeps the recorded path valid against concurrent
              // writers).
              auto path = std::make_shared<std::vector<std::uint32_t>>();
              PutHop(locked, tree_->root(), key, value, lock, path);
            });
      });
}

void BtreeOpDriver::PutHop(OpEngine::Op& op, std::uint32_t node,
                           std::uint64_t key, std::uint64_t value,
                           core::DistributedLock* lock, PathPtr path) {
  engine_->Read(
      op, tree_->buffer(), tree_->NodeOffset(node), PoolBtree::kNodeBytes,
      [this, node, key, value, lock, path](OpEngine::Op& o) {
        path->push_back(node);
        auto step = tree_->DescendStep(o.server(), node, key,
                                       engine_->simulator()->now());
        if (!step.ok()) {
          FailLocked(o, lock, step.status());
          return;
        }
        if (!step->leaf) {
          PutHop(o, step->child, key, value, lock, path);
          return;
        }
        // Apply the mutation, then price every node it wrote as dependent
        // transfers (the write-back is itself a chain of pool accesses).
        auto written = std::make_shared<std::vector<std::uint32_t>>();
        const Status applied =
            tree_->InsertAtPath(o.server(), *path, key, value,
                                engine_->simulator()->now(), written.get());
        if (!applied.ok()) {
          FailLocked(o, lock, applied);
          return;
        }
        PriceWrites(o, written, 0, lock);
      });
}

void BtreeOpDriver::PriceWrites(OpEngine::Op& op, WritesPtr written,
                                std::size_t index,
                                core::DistributedLock* lock) {
  if (index >= written->size()) {
    engine_->Release(op, lock,
                     [this](OpEngine::Op& o) { engine_->Finish(o); });
    return;
  }
  engine_->Write(op, tree_->buffer(), tree_->NodeOffset((*written)[index]),
                 PoolBtree::kNodeBytes,
                 [this, written, index, lock](OpEngine::Op& o) {
                   PriceWrites(o, written, index + 1, lock);
                 });
}

void BtreeOpDriver::FailLocked(OpEngine::Op& op, core::DistributedLock* lock,
                               Status status) {
  // Failing while holding the stripe must not wedge every later writer;
  // drop the lock functionally (no priced round trip — the op is dying).
  (void)lock->Unlock(static_cast<int>(op.server()));
  engine_->Finish(op, std::move(status));
}

}  // namespace lmp::ops
