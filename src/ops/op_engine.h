// OpEngine: a request-level asynchronous operation layer over the pool.
//
// The bandwidth benches drive the simulator with a handful of long streams;
// a production system is judged on what happens to millions of small
// *requests* — the p50/p99/p999 of individual gets, puts, and scans.  This
// is the layer §6's inherited RDMA applications (FaRM-style KV stores,
// distributed ordered indexes) run on: each in-flight operation is a
// lightweight state machine advanced only by simulator completions.  Every
// hop — a root→leaf pointer chase, a record read or write, a lock
// acquisition round trip — is priced as a SpanStream over the fluid
// simulator's resource graph, resolved against the segment map at issue
// time.  There are no cached-node shortcuts: if a node is remote when the
// op reaches it, the op pays the remote path; if migration moved it since
// the previous hop, the op pays the new home.
//
// Shape (after the sst-elements async B+tree): ops live in a pending map,
// each step issues one priced access and parks a continuation, and the
// completion callback — always deferred through the simulator's timer
// wheel — runs the continuation, which issues the next step or finishes
// the op.  Finishing records the op's sim-time latency into the
// MetricsRegistry distribution "<prefix>.get|put|scan|op", which is where
// the percentile plumbing (bench sidecars, metrics JSON) picks it up.
//
// Locks: Acquire() prices every TryLock attempt as one coherent-region
// round trip of simulated time, and failed attempts retry from the timer
// wheel — so lock contention costs sim time and shows up in the op's
// latency, and a wedged holder exhausts max_lock_spins after a measurable
// (not instantaneous) wait.
//
// Determinism: the engine takes decisions from simulation state only.  Op
// ids issue monotonically, continuations run in timer FIFO order, and the
// solver's thread count never changes event order — so latency histograms,
// series, and traces are byte-identical for any --threads= value.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/metrics.h"
#include "common/status.h"
#include "core/coherent_region.h"
#include "core/pool_manager.h"
#include "fabric/topology.h"
#include "sim/stream.h"

namespace lmp::ops {

using OpId = std::uint64_t;

enum class OpKind : std::uint8_t { kGet, kPut, kScan, kOther };

const char* OpKindName(OpKind kind);

// Final accounting for one completed op.
struct OpResult {
  OpId id = 0;
  OpKind kind = OpKind::kOther;
  Status status;
  SimTime submit_time = 0;
  SimTime finish_time = 0;
  int hops = 0;        // priced accesses issued
  int lock_spins = 0;  // failed TryLock round trips
};

class OpEngine {
 public:
  struct Options {
    // Sim time one coherent-region round trip costs (TryLock CAS, unlock
    // store).  0 derives it from the topology's link profile: the
    // unloaded remote round-trip latency.
    SimTime lock_rtt = 0;
    // An Acquire() that loses this many TryLock rounds fails kUnavailable
    // (the wedged-peer guard) — after max_lock_spins * lock_rtt of sim
    // time, not instantaneously.
    int max_lock_spins = 1000;
    // Distribution/counter namespace, "<prefix>.get" etc.
    std::string metrics_prefix = "ops";
    // Registry receiving latency distributions and op counters; null uses
    // the process-global registry.
    MetricsRegistry* metrics = nullptr;
  };

  class Op;
  // One state-machine step.  Steps run from simulator callbacks; they may
  // issue the op's next access, submit new ops, or finish the op.  After
  // Finish() the Op reference is dead — return without touching it.
  using Step = std::function<void(Op&)>;
  using CompletionHook = std::function<void(const OpResult&)>;

  // An in-flight operation: identity, issuing context, and accounting.
  // Workload state (current node, collected rows) lives in the step
  // closures, so the engine stays workload-agnostic.
  class Op {
   public:
    OpId id() const { return id_; }
    OpKind kind() const { return kind_; }
    cluster::ServerId server() const { return server_; }
    int core() const { return core_; }
    SimTime submit_time() const { return submit_time_; }
    int hops() const { return hops_; }
    int lock_spins() const { return lock_spins_; }

   private:
    friend class OpEngine;
    OpId id_ = 0;
    OpKind kind_ = OpKind::kOther;
    cluster::ServerId server_ = 0;
    int core_ = 0;
    SimTime submit_time_ = 0;
    int hops_ = 0;
    int lock_spins_ = 0;
    std::unique_ptr<sim::SpanStream> stream_;  // current priced access
  };

  // All pointers must outlive the engine.  The topology must have been
  // built inside `sim`, and the manager's segments must resolve onto it
  // (same deployment — baselines::LogicalDeployment wires exactly this).
  OpEngine(sim::FluidSimulator* sim, fabric::Topology* topology,
           core::PoolManager* manager, Options options);
  OpEngine(sim::FluidSimulator* sim, fabric::Topology* topology,
           core::PoolManager* manager)
      : OpEngine(sim, topology, manager, Options()) {}

  // Submission ---------------------------------------------------------------

  // Creates an op owned by (server, core) and schedules `first` through a
  // zero-delay timer (submission itself is never reentrant).  The op id is
  // returned immediately; the step runs when the simulator reaches it.
  OpId Submit(OpKind kind, cluster::ServerId server, int core, Step first);

  // Steps (called from inside a Step) --------------------------------------

  // Prices a read/write of [offset, offset+len) of `buffer` from the op's
  // (server, core): one sim::Span per located span — local DRAM path,
  // remote fabric path, or pool path, resolved at issue time — chained as
  // one SpanStream.  `next` runs when the last span completes.  The engine
  // prices only; the functional access (and its hotness accounting) is the
  // caller's, typically performed inside `next` at completion time.
  // Unresolvable spans (kDataLoss after a crash, unknown buffers) finish
  // the op with that status instead of running `next`.
  void Read(Op& op, core::BufferId buffer, Bytes offset, Bytes len,
            Step next);
  void Write(Op& op, core::BufferId buffer, Bytes offset, Bytes len,
             Step next);

  // Acquires `lock` for the op's server.  Every attempt costs one lock_rtt
  // of sim time; failures retry from the timer wheel (incrementing
  // lock_spins) until success or max_lock_spins, which finishes the op
  // kUnavailable.  `next` runs holding the lock.
  void Acquire(Op& op, core::DistributedLock* lock, Step next);
  // Releases `lock` (one round trip) and runs `next`.
  void Release(Op& op, core::DistributedLock* lock, Step next);

  // Pure sim-time delay (compute, client think time).
  void Delay(Op& op, SimTime delay, Step next);

  // Completes the op: records its latency distribution and counters, runs
  // the completion hook, and destroys the Op.
  void Finish(Op& op, Status status = Status::Ok());

  // Introspection ------------------------------------------------------------

  std::size_t in_flight() const { return pending_.size(); }
  std::uint64_t submitted() const { return next_id_ - 1; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t failed() const { return failed_; }

  // Runs the simulator until every submitted op has finished.  Closed-loop
  // drivers that resubmit from the completion hook drain naturally once
  // they stop.  Fails if the simulator goes idle with ops still parked
  // (a stuck state machine — means an engine or driver bug).
  Status Drain();

  // Fired after each op finishes (closed-loop drivers resubmit here; the
  // hook runs inside a timer callback, so submitting is safe).
  void set_on_complete(CompletionHook hook) { on_complete_ = std::move(hook); }

  SimTime lock_rtt() const { return lock_rtt_; }
  sim::FluidSimulator* simulator() { return sim_; }
  core::PoolManager* manager() { return manager_; }

 private:
  void IssueAccess(Op& op, core::BufferId buffer, Bytes offset, Bytes len,
                   double weight, Step next);
  void AttemptLock(OpId id, core::DistributedLock* lock, Step next);
  void RunStep(OpId id, const Step& step);
  MetricsRegistry& metrics() { return *metrics_; }

  sim::FluidSimulator* sim_;
  fabric::Topology* topology_;
  core::PoolManager* manager_;
  Options options_;
  SimTime lock_rtt_ = 0;
  MetricsRegistry* metrics_;
  // Node-based map: Op addresses stay stable while steps run.  Ops are
  // erased on Finish, so memory tracks in-flight — not total — requests.
  std::map<OpId, Op> pending_;
  OpId next_id_ = 1;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  CompletionHook on_complete_;
  // Cached distribution instruments (one lookup per kind, not per op).
  Histogram* latency_hist_[4] = {nullptr, nullptr, nullptr, nullptr};
};

}  // namespace lmp::ops
