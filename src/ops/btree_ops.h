// BtreeOpDriver: the PoolBtree tenant expressed as OpEngine state machines.
//
// Each get is a root→leaf pointer chase where every hop is a separate
// priced 512-byte read — the op cannot advance past a node until the
// simulator delivers that node's transfer, and the node's home is resolved
// at hop time (migration mid-descent changes what later hops cost, exactly
// like a real RDMA tree walk with no client-side node cache).  Each put
// acquires a striped writer lock (priced coherent round trips), re-descends
// under the lock, applies the mutation, then prices every node the insert
// wrote — leaf, split siblings, ancestors — as a dependent write chain
// before releasing.  Each scan descends to the start leaf and pays one
// priced read per chained leaf it consumes.
//
// The functional tree operation happens at completion time (when the priced
// transfer lands), so PoolManager's hotness profile sees each node access
// at the simulated instant it occurs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/coherent_region.h"
#include "ops/op_engine.h"
#include "workloads/pool_btree.h"

namespace lmp::ops {

class BtreeOpDriver {
 public:
  struct Options {
    // Writer locks, striped by key hash.  1 = one global writer lock.
    int lock_stripes = 16;
  };

  // Engine and tree must outlive the driver.  The driver owns a private
  // coherent region holding the lock stripes (one cell each), sized for the
  // engine's cluster hosts.
  BtreeOpDriver(OpEngine* engine, workloads::PoolBtree* tree, int num_hosts,
                Options options);
  BtreeOpDriver(OpEngine* engine, workloads::PoolBtree* tree, int num_hosts)
      : BtreeOpDriver(engine, tree, num_hosts, Options()) {}

  // Submit one async op from (server, core).  Results arrive through the
  // engine's completion hook; get/scan deliver their payload to `on_value`
  // / `on_rows` (optional, run just before the op finishes).
  OpId SubmitGet(cluster::ServerId server, int core, std::uint64_t key,
                 std::function<void(StatusOr<std::uint64_t>)> on_value = {});
  OpId SubmitPut(cluster::ServerId server, int core, std::uint64_t key,
                 std::uint64_t value);
  OpId SubmitScan(
      cluster::ServerId server, int core, std::uint64_t start,
      std::size_t limit,
      std::function<void(
          const std::vector<std::pair<std::uint64_t, std::uint64_t>>&)>
          on_rows = {});

  workloads::PoolBtree* tree() { return tree_; }
  core::DistributedLock* lock_for(std::uint64_t key) {
    return locks_[key % locks_.size()].get();
  }

 private:
  using RowsPtr = std::shared_ptr<
      std::vector<std::pair<std::uint64_t, std::uint64_t>>>;
  using PathPtr = std::shared_ptr<std::vector<std::uint32_t>>;
  using WritesPtr = std::shared_ptr<std::vector<std::uint32_t>>;

  // Each helper prices one 512-byte node access and, at completion, takes
  // the functional step and issues the next hop (or finishes the op).
  void GetHop(OpEngine::Op& op, std::uint32_t node, std::uint64_t key,
              const std::function<void(StatusOr<std::uint64_t>)>& cb);
  void ScanHop(OpEngine::Op& op, std::uint32_t node, std::uint64_t start,
               std::size_t limit, RowsPtr rows,
               const std::function<void(const std::vector<
                   std::pair<std::uint64_t, std::uint64_t>>&)>& cb);
  void ConsumeLeaf(OpEngine::Op& op, std::uint32_t node, std::uint64_t start,
                   std::size_t limit, RowsPtr rows,
                   const std::function<void(const std::vector<
                       std::pair<std::uint64_t, std::uint64_t>>&)>& cb);
  void PutHop(OpEngine::Op& op, std::uint32_t node, std::uint64_t key,
              std::uint64_t value, core::DistributedLock* lock, PathPtr path);
  void PriceWrites(OpEngine::Op& op, WritesPtr written, std::size_t index,
                   core::DistributedLock* lock);
  void FailLocked(OpEngine::Op& op, core::DistributedLock* lock,
                  Status status);

  OpEngine* engine_;
  workloads::PoolBtree* tree_;
  Options options_;
  std::unique_ptr<core::CoherentRegion> lock_region_;
  std::vector<std::unique_ptr<core::DistributedLock>> locks_;
};

}  // namespace lmp::ops
