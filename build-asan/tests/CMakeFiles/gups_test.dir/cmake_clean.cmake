file(REMOVE_RECURSE
  "CMakeFiles/gups_test.dir/gups_test.cc.o"
  "CMakeFiles/gups_test.dir/gups_test.cc.o.d"
  "gups_test"
  "gups_test.pdb"
  "gups_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gups_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
