# Empty dependencies file for gups_test.
# This may be replaced when dependencies are built.
