file(REMOVE_RECURSE
  "CMakeFiles/software_swap_test.dir/software_swap_test.cc.o"
  "CMakeFiles/software_swap_test.dir/software_swap_test.cc.o.d"
  "software_swap_test"
  "software_swap_test.pdb"
  "software_swap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/software_swap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
