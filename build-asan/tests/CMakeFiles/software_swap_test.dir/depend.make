# Empty dependencies file for software_swap_test.
# This may be replaced when dependencies are built.
