# Empty dependencies file for typed_buffer_test.
# This may be replaced when dependencies are built.
