file(REMOVE_RECURSE
  "CMakeFiles/typed_buffer_test.dir/typed_buffer_test.cc.o"
  "CMakeFiles/typed_buffer_test.dir/typed_buffer_test.cc.o.d"
  "typed_buffer_test"
  "typed_buffer_test.pdb"
  "typed_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/typed_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
