# Empty dependencies file for access_bits_test.
# This may be replaced when dependencies are built.
