file(REMOVE_RECURSE
  "CMakeFiles/access_bits_test.dir/access_bits_test.cc.o"
  "CMakeFiles/access_bits_test.dir/access_bits_test.cc.o.d"
  "access_bits_test"
  "access_bits_test.pdb"
  "access_bits_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_bits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
