# Empty dependencies file for split_metrics_test.
# This may be replaced when dependencies are built.
