file(REMOVE_RECURSE
  "CMakeFiles/split_metrics_test.dir/split_metrics_test.cc.o"
  "CMakeFiles/split_metrics_test.dir/split_metrics_test.cc.o.d"
  "split_metrics_test"
  "split_metrics_test.pdb"
  "split_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
