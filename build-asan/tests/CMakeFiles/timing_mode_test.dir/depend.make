# Empty dependencies file for timing_mode_test.
# This may be replaced when dependencies are built.
