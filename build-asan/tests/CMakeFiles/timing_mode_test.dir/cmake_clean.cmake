file(REMOVE_RECURSE
  "CMakeFiles/timing_mode_test.dir/timing_mode_test.cc.o"
  "CMakeFiles/timing_mode_test.dir/timing_mode_test.cc.o.d"
  "timing_mode_test"
  "timing_mode_test.pdb"
  "timing_mode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_mode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
