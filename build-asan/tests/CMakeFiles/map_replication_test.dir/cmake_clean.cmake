file(REMOVE_RECURSE
  "CMakeFiles/map_replication_test.dir/map_replication_test.cc.o"
  "CMakeFiles/map_replication_test.dir/map_replication_test.cc.o.d"
  "map_replication_test"
  "map_replication_test.pdb"
  "map_replication_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_replication_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
