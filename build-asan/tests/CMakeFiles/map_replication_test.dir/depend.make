# Empty dependencies file for map_replication_test.
# This may be replaced when dependencies are built.
