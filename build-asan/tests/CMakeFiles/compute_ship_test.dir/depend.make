# Empty dependencies file for compute_ship_test.
# This may be replaced when dependencies are built.
