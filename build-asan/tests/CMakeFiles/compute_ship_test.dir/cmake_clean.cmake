file(REMOVE_RECURSE
  "CMakeFiles/compute_ship_test.dir/compute_ship_test.cc.o"
  "CMakeFiles/compute_ship_test.dir/compute_ship_test.cc.o.d"
  "compute_ship_test"
  "compute_ship_test.pdb"
  "compute_ship_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compute_ship_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
