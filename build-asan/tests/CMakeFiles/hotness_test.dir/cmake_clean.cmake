file(REMOVE_RECURSE
  "CMakeFiles/hotness_test.dir/hotness_test.cc.o"
  "CMakeFiles/hotness_test.dir/hotness_test.cc.o.d"
  "hotness_test"
  "hotness_test.pdb"
  "hotness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
