# Empty dependencies file for hotness_test.
# This may be replaced when dependencies are built.
