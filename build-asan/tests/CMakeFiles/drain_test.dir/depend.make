# Empty dependencies file for drain_test.
# This may be replaced when dependencies are built.
