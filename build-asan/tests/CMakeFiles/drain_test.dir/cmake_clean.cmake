file(REMOVE_RECURSE
  "CMakeFiles/drain_test.dir/drain_test.cc.o"
  "CMakeFiles/drain_test.dir/drain_test.cc.o.d"
  "drain_test"
  "drain_test.pdb"
  "drain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
