file(REMOVE_RECURSE
  "CMakeFiles/ship_integration_test.dir/ship_integration_test.cc.o"
  "CMakeFiles/ship_integration_test.dir/ship_integration_test.cc.o.d"
  "ship_integration_test"
  "ship_integration_test.pdb"
  "ship_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ship_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
