# Empty dependencies file for ship_integration_test.
# This may be replaced when dependencies are built.
