file(REMOVE_RECURSE
  "CMakeFiles/task_scheduler_test.dir/task_scheduler_test.cc.o"
  "CMakeFiles/task_scheduler_test.dir/task_scheduler_test.cc.o.d"
  "task_scheduler_test"
  "task_scheduler_test.pdb"
  "task_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
