# Empty dependencies file for pbr_switch_test.
# This may be replaced when dependencies are built.
