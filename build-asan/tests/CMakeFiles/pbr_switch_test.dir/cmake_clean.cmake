file(REMOVE_RECURSE
  "CMakeFiles/pbr_switch_test.dir/pbr_switch_test.cc.o"
  "CMakeFiles/pbr_switch_test.dir/pbr_switch_test.cc.o.d"
  "pbr_switch_test"
  "pbr_switch_test.pdb"
  "pbr_switch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbr_switch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
