# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for pbr_switch_test.
