# Empty dependencies file for grow_shrink_test.
# This may be replaced when dependencies are built.
