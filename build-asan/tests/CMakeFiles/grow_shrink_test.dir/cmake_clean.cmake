file(REMOVE_RECURSE
  "CMakeFiles/grow_shrink_test.dir/grow_shrink_test.cc.o"
  "CMakeFiles/grow_shrink_test.dir/grow_shrink_test.cc.o.d"
  "grow_shrink_test"
  "grow_shrink_test.pdb"
  "grow_shrink_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grow_shrink_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
