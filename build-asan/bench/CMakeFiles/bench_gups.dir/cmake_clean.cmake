file(REMOVE_RECURSE
  "CMakeFiles/bench_gups.dir/bench_gups.cc.o"
  "CMakeFiles/bench_gups.dir/bench_gups.cc.o.d"
  "bench_gups"
  "bench_gups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
