# Empty dependencies file for bench_gups.
# This may be replaced when dependencies are built.
