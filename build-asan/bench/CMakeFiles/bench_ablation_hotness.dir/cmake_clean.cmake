file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hotness.dir/bench_ablation_hotness.cc.o"
  "CMakeFiles/bench_ablation_hotness.dir/bench_ablation_hotness.cc.o.d"
  "bench_ablation_hotness"
  "bench_ablation_hotness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hotness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
