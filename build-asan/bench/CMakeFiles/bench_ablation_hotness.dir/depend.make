# Empty dependencies file for bench_ablation_hotness.
# This may be replaced when dependencies are built.
