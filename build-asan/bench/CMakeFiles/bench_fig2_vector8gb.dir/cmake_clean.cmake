file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_vector8gb.dir/bench_fig2_vector8gb.cc.o"
  "CMakeFiles/bench_fig2_vector8gb.dir/bench_fig2_vector8gb.cc.o.d"
  "bench_fig2_vector8gb"
  "bench_fig2_vector8gb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_vector8gb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
