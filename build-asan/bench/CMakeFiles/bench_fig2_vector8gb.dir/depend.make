# Empty dependencies file for bench_fig2_vector8gb.
# This may be replaced when dependencies are built.
