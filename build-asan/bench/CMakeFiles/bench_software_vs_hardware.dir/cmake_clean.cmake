file(REMOVE_RECURSE
  "CMakeFiles/bench_software_vs_hardware.dir/bench_software_vs_hardware.cc.o"
  "CMakeFiles/bench_software_vs_hardware.dir/bench_software_vs_hardware.cc.o.d"
  "bench_software_vs_hardware"
  "bench_software_vs_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_software_vs_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
