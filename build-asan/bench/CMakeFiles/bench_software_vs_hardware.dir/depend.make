# Empty dependencies file for bench_software_vs_hardware.
# This may be replaced when dependencies are built.
