file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_migration.dir/bench_ablation_migration.cc.o"
  "CMakeFiles/bench_ablation_migration.dir/bench_ablation_migration.cc.o.d"
  "bench_ablation_migration"
  "bench_ablation_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
