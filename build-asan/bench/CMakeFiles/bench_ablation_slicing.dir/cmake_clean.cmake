file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_slicing.dir/bench_ablation_slicing.cc.o"
  "CMakeFiles/bench_ablation_slicing.dir/bench_ablation_slicing.cc.o.d"
  "bench_ablation_slicing"
  "bench_ablation_slicing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_slicing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
