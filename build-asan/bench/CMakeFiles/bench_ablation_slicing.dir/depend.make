# Empty dependencies file for bench_ablation_slicing.
# This may be replaced when dependencies are built.
