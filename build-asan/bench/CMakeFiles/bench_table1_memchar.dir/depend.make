# Empty dependencies file for bench_table1_memchar.
# This may be replaced when dependencies are built.
