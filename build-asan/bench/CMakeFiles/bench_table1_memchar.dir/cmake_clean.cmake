file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_memchar.dir/bench_table1_memchar.cc.o"
  "CMakeFiles/bench_table1_memchar.dir/bench_table1_memchar.cc.o.d"
  "bench_table1_memchar"
  "bench_table1_memchar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_memchar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
