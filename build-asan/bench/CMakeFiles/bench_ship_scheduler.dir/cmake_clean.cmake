file(REMOVE_RECURSE
  "CMakeFiles/bench_ship_scheduler.dir/bench_ship_scheduler.cc.o"
  "CMakeFiles/bench_ship_scheduler.dir/bench_ship_scheduler.cc.o.d"
  "bench_ship_scheduler"
  "bench_ship_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ship_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
