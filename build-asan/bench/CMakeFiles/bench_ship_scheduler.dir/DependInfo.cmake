
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ship_scheduler.cc" "bench/CMakeFiles/bench_ship_scheduler.dir/bench_ship_scheduler.cc.o" "gcc" "bench/CMakeFiles/bench_ship_scheduler.dir/bench_ship_scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/baselines/CMakeFiles/lmp_baselines.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/core/CMakeFiles/lmp_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/cluster/CMakeFiles/lmp_cluster.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/mem/CMakeFiles/lmp_mem.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/fabric/CMakeFiles/lmp_fabric.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/lmp_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/lmp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
