# Empty dependencies file for bench_ship_scheduler.
# This may be replaced when dependencies are built.
