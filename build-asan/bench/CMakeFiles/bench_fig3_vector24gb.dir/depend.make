# Empty dependencies file for bench_fig3_vector24gb.
# This may be replaced when dependencies are built.
