file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_vector24gb.dir/bench_fig3_vector24gb.cc.o"
  "CMakeFiles/bench_fig3_vector24gb.dir/bench_fig3_vector24gb.cc.o.d"
  "bench_fig3_vector24gb"
  "bench_fig3_vector24gb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_vector24gb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
