# Empty dependencies file for bench_table2_links.
# This may be replaced when dependencies are built.
