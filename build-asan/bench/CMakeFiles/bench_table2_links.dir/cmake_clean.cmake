file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_links.dir/bench_table2_links.cc.o"
  "CMakeFiles/bench_table2_links.dir/bench_table2_links.cc.o.d"
  "bench_table2_links"
  "bench_table2_links.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_links.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
