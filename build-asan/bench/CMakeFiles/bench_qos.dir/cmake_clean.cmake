file(REMOVE_RECURSE
  "CMakeFiles/bench_qos.dir/bench_qos.cc.o"
  "CMakeFiles/bench_qos.dir/bench_qos.cc.o.d"
  "bench_qos"
  "bench_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
