file(REMOVE_RECURSE
  "CMakeFiles/bench_snoop_filter.dir/bench_snoop_filter.cc.o"
  "CMakeFiles/bench_snoop_filter.dir/bench_snoop_filter.cc.o.d"
  "bench_snoop_filter"
  "bench_snoop_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_snoop_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
