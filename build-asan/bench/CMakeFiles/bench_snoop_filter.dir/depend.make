# Empty dependencies file for bench_snoop_filter.
# This may be replaced when dependencies are built.
