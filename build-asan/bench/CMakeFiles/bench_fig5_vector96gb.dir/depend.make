# Empty dependencies file for bench_fig5_vector96gb.
# This may be replaced when dependencies are built.
