file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_vector96gb.dir/bench_fig5_vector96gb.cc.o"
  "CMakeFiles/bench_fig5_vector96gb.dir/bench_fig5_vector96gb.cc.o.d"
  "bench_fig5_vector96gb"
  "bench_fig5_vector96gb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_vector96gb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
