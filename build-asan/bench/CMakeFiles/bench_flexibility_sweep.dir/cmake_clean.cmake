file(REMOVE_RECURSE
  "CMakeFiles/bench_flexibility_sweep.dir/bench_flexibility_sweep.cc.o"
  "CMakeFiles/bench_flexibility_sweep.dir/bench_flexibility_sweep.cc.o.d"
  "bench_flexibility_sweep"
  "bench_flexibility_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flexibility_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
