# Empty dependencies file for bench_flexibility_sweep.
# This may be replaced when dependencies are built.
