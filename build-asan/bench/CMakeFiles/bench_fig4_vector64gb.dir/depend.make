# Empty dependencies file for bench_fig4_vector64gb.
# This may be replaced when dependencies are built.
