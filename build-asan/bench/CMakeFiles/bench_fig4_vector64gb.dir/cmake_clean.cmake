file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_vector64gb.dir/bench_fig4_vector64gb.cc.o"
  "CMakeFiles/bench_fig4_vector64gb.dir/bench_fig4_vector64gb.cc.o.d"
  "bench_fig4_vector64gb"
  "bench_fig4_vector64gb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_vector64gb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
