# Empty dependencies file for bench_multirack.
# This may be replaced when dependencies are built.
