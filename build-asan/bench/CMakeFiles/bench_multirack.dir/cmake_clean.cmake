file(REMOVE_RECURSE
  "CMakeFiles/bench_multirack.dir/bench_multirack.cc.o"
  "CMakeFiles/bench_multirack.dir/bench_multirack.cc.o.d"
  "bench_multirack"
  "bench_multirack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multirack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
