file(REMOVE_RECURSE
  "CMakeFiles/bench_incast.dir/bench_incast.cc.o"
  "CMakeFiles/bench_incast.dir/bench_incast.cc.o.d"
  "bench_incast"
  "bench_incast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_incast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
