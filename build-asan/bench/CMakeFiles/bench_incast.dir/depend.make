# Empty dependencies file for bench_incast.
# This may be replaced when dependencies are built.
