file(REMOVE_RECURSE
  "CMakeFiles/bench_nearmem_shipping.dir/bench_nearmem_shipping.cc.o"
  "CMakeFiles/bench_nearmem_shipping.dir/bench_nearmem_shipping.cc.o.d"
  "bench_nearmem_shipping"
  "bench_nearmem_shipping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nearmem_shipping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
