# Empty dependencies file for bench_nearmem_shipping.
# This may be replaced when dependencies are built.
