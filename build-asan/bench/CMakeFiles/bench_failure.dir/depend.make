# Empty dependencies file for bench_failure.
# This may be replaced when dependencies are built.
