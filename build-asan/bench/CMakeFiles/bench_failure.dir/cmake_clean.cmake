file(REMOVE_RECURSE
  "CMakeFiles/bench_failure.dir/bench_failure.cc.o"
  "CMakeFiles/bench_failure.dir/bench_failure.cc.o.d"
  "bench_failure"
  "bench_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
