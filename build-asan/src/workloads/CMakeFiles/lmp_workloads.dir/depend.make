# Empty dependencies file for lmp_workloads.
# This may be replaced when dependencies are built.
