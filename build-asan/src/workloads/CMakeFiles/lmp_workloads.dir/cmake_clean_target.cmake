file(REMOVE_RECURSE
  "liblmp_workloads.a"
)
