file(REMOVE_RECURSE
  "CMakeFiles/lmp_workloads.dir/graph.cc.o"
  "CMakeFiles/lmp_workloads.dir/graph.cc.o.d"
  "CMakeFiles/lmp_workloads.dir/gups.cc.o"
  "CMakeFiles/lmp_workloads.dir/gups.cc.o.d"
  "CMakeFiles/lmp_workloads.dir/kv_store.cc.o"
  "CMakeFiles/lmp_workloads.dir/kv_store.cc.o.d"
  "CMakeFiles/lmp_workloads.dir/trace.cc.o"
  "CMakeFiles/lmp_workloads.dir/trace.cc.o.d"
  "CMakeFiles/lmp_workloads.dir/vector_sum.cc.o"
  "CMakeFiles/lmp_workloads.dir/vector_sum.cc.o.d"
  "liblmp_workloads.a"
  "liblmp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
