# Empty dependencies file for lmp_core.
# This may be replaced when dependencies are built.
