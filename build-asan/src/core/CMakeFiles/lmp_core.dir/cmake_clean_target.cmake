file(REMOVE_RECURSE
  "liblmp_core.a"
)
