
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/access_bits.cc" "src/core/CMakeFiles/lmp_core.dir/access_bits.cc.o" "gcc" "src/core/CMakeFiles/lmp_core.dir/access_bits.cc.o.d"
  "/root/repo/src/core/coherence.cc" "src/core/CMakeFiles/lmp_core.dir/coherence.cc.o" "gcc" "src/core/CMakeFiles/lmp_core.dir/coherence.cc.o.d"
  "/root/repo/src/core/coherent_region.cc" "src/core/CMakeFiles/lmp_core.dir/coherent_region.cc.o" "gcc" "src/core/CMakeFiles/lmp_core.dir/coherent_region.cc.o.d"
  "/root/repo/src/core/compute_ship.cc" "src/core/CMakeFiles/lmp_core.dir/compute_ship.cc.o" "gcc" "src/core/CMakeFiles/lmp_core.dir/compute_ship.cc.o.d"
  "/root/repo/src/core/erasure.cc" "src/core/CMakeFiles/lmp_core.dir/erasure.cc.o" "gcc" "src/core/CMakeFiles/lmp_core.dir/erasure.cc.o.d"
  "/root/repo/src/core/hotness.cc" "src/core/CMakeFiles/lmp_core.dir/hotness.cc.o" "gcc" "src/core/CMakeFiles/lmp_core.dir/hotness.cc.o.d"
  "/root/repo/src/core/lmp.cc" "src/core/CMakeFiles/lmp_core.dir/lmp.cc.o" "gcc" "src/core/CMakeFiles/lmp_core.dir/lmp.cc.o.d"
  "/root/repo/src/core/local_map.cc" "src/core/CMakeFiles/lmp_core.dir/local_map.cc.o" "gcc" "src/core/CMakeFiles/lmp_core.dir/local_map.cc.o.d"
  "/root/repo/src/core/map_replication.cc" "src/core/CMakeFiles/lmp_core.dir/map_replication.cc.o" "gcc" "src/core/CMakeFiles/lmp_core.dir/map_replication.cc.o.d"
  "/root/repo/src/core/migration.cc" "src/core/CMakeFiles/lmp_core.dir/migration.cc.o" "gcc" "src/core/CMakeFiles/lmp_core.dir/migration.cc.o.d"
  "/root/repo/src/core/placement.cc" "src/core/CMakeFiles/lmp_core.dir/placement.cc.o" "gcc" "src/core/CMakeFiles/lmp_core.dir/placement.cc.o.d"
  "/root/repo/src/core/pool_manager.cc" "src/core/CMakeFiles/lmp_core.dir/pool_manager.cc.o" "gcc" "src/core/CMakeFiles/lmp_core.dir/pool_manager.cc.o.d"
  "/root/repo/src/core/replication.cc" "src/core/CMakeFiles/lmp_core.dir/replication.cc.o" "gcc" "src/core/CMakeFiles/lmp_core.dir/replication.cc.o.d"
  "/root/repo/src/core/runtime.cc" "src/core/CMakeFiles/lmp_core.dir/runtime.cc.o" "gcc" "src/core/CMakeFiles/lmp_core.dir/runtime.cc.o.d"
  "/root/repo/src/core/segment_map.cc" "src/core/CMakeFiles/lmp_core.dir/segment_map.cc.o" "gcc" "src/core/CMakeFiles/lmp_core.dir/segment_map.cc.o.d"
  "/root/repo/src/core/sizing.cc" "src/core/CMakeFiles/lmp_core.dir/sizing.cc.o" "gcc" "src/core/CMakeFiles/lmp_core.dir/sizing.cc.o.d"
  "/root/repo/src/core/task_scheduler.cc" "src/core/CMakeFiles/lmp_core.dir/task_scheduler.cc.o" "gcc" "src/core/CMakeFiles/lmp_core.dir/task_scheduler.cc.o.d"
  "/root/repo/src/core/translation.cc" "src/core/CMakeFiles/lmp_core.dir/translation.cc.o" "gcc" "src/core/CMakeFiles/lmp_core.dir/translation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/lmp_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/mem/CMakeFiles/lmp_mem.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/cluster/CMakeFiles/lmp_cluster.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/fabric/CMakeFiles/lmp_fabric.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/lmp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
