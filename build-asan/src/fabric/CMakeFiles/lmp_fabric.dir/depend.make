# Empty dependencies file for lmp_fabric.
# This may be replaced when dependencies are built.
