file(REMOVE_RECURSE
  "CMakeFiles/lmp_fabric.dir/cxl.cc.o"
  "CMakeFiles/lmp_fabric.dir/cxl.cc.o.d"
  "CMakeFiles/lmp_fabric.dir/link.cc.o"
  "CMakeFiles/lmp_fabric.dir/link.cc.o.d"
  "CMakeFiles/lmp_fabric.dir/pbr_switch.cc.o"
  "CMakeFiles/lmp_fabric.dir/pbr_switch.cc.o.d"
  "CMakeFiles/lmp_fabric.dir/topology.cc.o"
  "CMakeFiles/lmp_fabric.dir/topology.cc.o.d"
  "liblmp_fabric.a"
  "liblmp_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmp_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
