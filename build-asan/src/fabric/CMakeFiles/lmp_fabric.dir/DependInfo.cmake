
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/cxl.cc" "src/fabric/CMakeFiles/lmp_fabric.dir/cxl.cc.o" "gcc" "src/fabric/CMakeFiles/lmp_fabric.dir/cxl.cc.o.d"
  "/root/repo/src/fabric/link.cc" "src/fabric/CMakeFiles/lmp_fabric.dir/link.cc.o" "gcc" "src/fabric/CMakeFiles/lmp_fabric.dir/link.cc.o.d"
  "/root/repo/src/fabric/pbr_switch.cc" "src/fabric/CMakeFiles/lmp_fabric.dir/pbr_switch.cc.o" "gcc" "src/fabric/CMakeFiles/lmp_fabric.dir/pbr_switch.cc.o.d"
  "/root/repo/src/fabric/topology.cc" "src/fabric/CMakeFiles/lmp_fabric.dir/topology.cc.o" "gcc" "src/fabric/CMakeFiles/lmp_fabric.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/lmp_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/lmp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
