file(REMOVE_RECURSE
  "liblmp_fabric.a"
)
