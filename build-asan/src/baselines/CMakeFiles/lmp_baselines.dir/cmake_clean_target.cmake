file(REMOVE_RECURSE
  "liblmp_baselines.a"
)
