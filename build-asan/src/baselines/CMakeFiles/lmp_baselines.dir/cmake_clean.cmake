file(REMOVE_RECURSE
  "CMakeFiles/lmp_baselines.dir/logical.cc.o"
  "CMakeFiles/lmp_baselines.dir/logical.cc.o.d"
  "CMakeFiles/lmp_baselines.dir/physical.cc.o"
  "CMakeFiles/lmp_baselines.dir/physical.cc.o.d"
  "CMakeFiles/lmp_baselines.dir/software_swap.cc.o"
  "CMakeFiles/lmp_baselines.dir/software_swap.cc.o.d"
  "liblmp_baselines.a"
  "liblmp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
