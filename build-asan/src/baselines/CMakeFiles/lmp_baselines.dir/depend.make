# Empty dependencies file for lmp_baselines.
# This may be replaced when dependencies are built.
