file(REMOVE_RECURSE
  "liblmp_cluster.a"
)
