# Empty dependencies file for lmp_cluster.
# This may be replaced when dependencies are built.
