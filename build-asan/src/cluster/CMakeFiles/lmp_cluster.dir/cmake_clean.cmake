file(REMOVE_RECURSE
  "CMakeFiles/lmp_cluster.dir/cluster.cc.o"
  "CMakeFiles/lmp_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/lmp_cluster.dir/cost_model.cc.o"
  "CMakeFiles/lmp_cluster.dir/cost_model.cc.o.d"
  "CMakeFiles/lmp_cluster.dir/server.cc.o"
  "CMakeFiles/lmp_cluster.dir/server.cc.o.d"
  "liblmp_cluster.a"
  "liblmp_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmp_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
