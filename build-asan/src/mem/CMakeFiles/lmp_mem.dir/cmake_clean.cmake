file(REMOVE_RECURSE
  "CMakeFiles/lmp_mem.dir/frame_allocator.cc.o"
  "CMakeFiles/lmp_mem.dir/frame_allocator.cc.o.d"
  "CMakeFiles/lmp_mem.dir/lru_cache.cc.o"
  "CMakeFiles/lmp_mem.dir/lru_cache.cc.o.d"
  "liblmp_mem.a"
  "liblmp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
