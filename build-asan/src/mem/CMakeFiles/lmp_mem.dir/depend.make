# Empty dependencies file for lmp_mem.
# This may be replaced when dependencies are built.
