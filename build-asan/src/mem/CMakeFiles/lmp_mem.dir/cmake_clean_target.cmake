file(REMOVE_RECURSE
  "liblmp_mem.a"
)
