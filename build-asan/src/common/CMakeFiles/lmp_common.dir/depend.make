# Empty dependencies file for lmp_common.
# This may be replaced when dependencies are built.
