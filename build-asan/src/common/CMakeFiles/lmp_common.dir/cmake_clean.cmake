file(REMOVE_RECURSE
  "CMakeFiles/lmp_common.dir/config.cc.o"
  "CMakeFiles/lmp_common.dir/config.cc.o.d"
  "CMakeFiles/lmp_common.dir/histogram.cc.o"
  "CMakeFiles/lmp_common.dir/histogram.cc.o.d"
  "CMakeFiles/lmp_common.dir/logging.cc.o"
  "CMakeFiles/lmp_common.dir/logging.cc.o.d"
  "CMakeFiles/lmp_common.dir/metrics.cc.o"
  "CMakeFiles/lmp_common.dir/metrics.cc.o.d"
  "CMakeFiles/lmp_common.dir/rng.cc.o"
  "CMakeFiles/lmp_common.dir/rng.cc.o.d"
  "CMakeFiles/lmp_common.dir/status.cc.o"
  "CMakeFiles/lmp_common.dir/status.cc.o.d"
  "CMakeFiles/lmp_common.dir/table.cc.o"
  "CMakeFiles/lmp_common.dir/table.cc.o.d"
  "liblmp_common.a"
  "liblmp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
