file(REMOVE_RECURSE
  "liblmp_common.a"
)
