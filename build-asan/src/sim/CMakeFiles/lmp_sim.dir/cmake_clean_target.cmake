file(REMOVE_RECURSE
  "liblmp_sim.a"
)
