# Empty dependencies file for lmp_sim.
# This may be replaced when dependencies are built.
