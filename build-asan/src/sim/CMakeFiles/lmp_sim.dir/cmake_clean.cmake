file(REMOVE_RECURSE
  "CMakeFiles/lmp_sim.dir/fluid.cc.o"
  "CMakeFiles/lmp_sim.dir/fluid.cc.o.d"
  "CMakeFiles/lmp_sim.dir/stream.cc.o"
  "CMakeFiles/lmp_sim.dir/stream.cc.o.d"
  "liblmp_sim.a"
  "liblmp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
