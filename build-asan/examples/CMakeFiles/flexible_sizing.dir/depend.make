# Empty dependencies file for flexible_sizing.
# This may be replaced when dependencies are built.
