file(REMOVE_RECURSE
  "CMakeFiles/flexible_sizing.dir/flexible_sizing.cpp.o"
  "CMakeFiles/flexible_sizing.dir/flexible_sizing.cpp.o.d"
  "flexible_sizing"
  "flexible_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexible_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
