file(REMOVE_RECURSE
  "CMakeFiles/pool_operations.dir/pool_operations.cpp.o"
  "CMakeFiles/pool_operations.dir/pool_operations.cpp.o.d"
  "pool_operations"
  "pool_operations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pool_operations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
