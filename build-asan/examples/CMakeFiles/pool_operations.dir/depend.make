# Empty dependencies file for pool_operations.
# This may be replaced when dependencies are built.
