# Empty dependencies file for vector_aggregation.
# This may be replaced when dependencies are built.
