file(REMOVE_RECURSE
  "CMakeFiles/vector_aggregation.dir/vector_aggregation.cpp.o"
  "CMakeFiles/vector_aggregation.dir/vector_aggregation.cpp.o.d"
  "vector_aggregation"
  "vector_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vector_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
