# Empty dependencies file for near_memory_compute.
# This may be replaced when dependencies are built.
