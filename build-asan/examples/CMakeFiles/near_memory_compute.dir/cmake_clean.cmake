file(REMOVE_RECURSE
  "CMakeFiles/near_memory_compute.dir/near_memory_compute.cpp.o"
  "CMakeFiles/near_memory_compute.dir/near_memory_compute.cpp.o.d"
  "near_memory_compute"
  "near_memory_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/near_memory_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
