#!/bin/sh
# Determinism canary: run a bench twice with every observability sidecar
# enabled and assert the files — and stdout — are byte-identical.  The
# metrics comparison additionally goes through tools/metrics_diff.py when
# python3 is available, exercising the structured differ.
#
# Usage: determinism_canary.sh <bench-binary> <scratch-dir> [bench args...]
#
# CANARY_RUN1_EXTRA_ARGS / CANARY_RUN2_EXTRA_ARGS append (word-split)
# per-run flags, so a caller can byte-compare two *different* settings
# that must not change results — e.g. --threads=1 vs --threads=8.
set -eu

bench="$1"
scratch="$2"
shift 2

mkdir -p "$scratch"
tools_dir="$(dirname "$0")"

for run in 1 2; do
  if [ "$run" = 1 ]; then
    extra="${CANARY_RUN1_EXTRA_ARGS:-}"
  else
    extra="${CANARY_RUN2_EXTRA_ARGS:-}"
  fi
  # shellcheck disable=SC2086  # $extra is intentionally word-split
  "$bench" "$@" $extra \
    --series-out="$scratch/$run.series.json" \
    --slo-out="$scratch/$run.slo.json" \
    --metrics-out="$scratch/$run.metrics.json" \
    > "$scratch/$run.stdout" 2> "$scratch/$run.stderr"
done

status=0
for kind in series.json slo.json metrics.json stdout; do
  if ! cmp -s "$scratch/1.$kind" "$scratch/2.$kind"; then
    echo "determinism_canary: $kind differs between runs" >&2
    status=1
  fi
done

if command -v python3 > /dev/null 2>&1; then
  python3 "$tools_dir/metrics_diff.py" \
    "$scratch/1.metrics.json" "$scratch/2.metrics.json" || status=1
fi

exit $status
