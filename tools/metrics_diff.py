#!/usr/bin/env python3
"""Compare two metrics JSON sidecars (--metrics-out= dumps).

Counters must match exactly; gauges, histogram means, and histogram
percentiles compare within a relative epsilon (default 0, i.e. exact —
the deterministic export should be byte-identical, so any epsilon is an
explicit concession).  Histogram bucket arrays and counts compare
exactly.  Also works on --series-out= and --slo-out= sidecars via
--mode=exact, which just canonicalises and compares the whole document.

Exit status: 0 when the files agree, 1 on any difference, 2 on usage or
I/O errors.  Differences are listed one per line as

    <kind> <name>: <a-value> != <b-value>

so a CI canary can surface the first regression directly.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"metrics_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def close(a, b, eps):
    if a == b:
        return True
    if eps <= 0:
        return False
    scale = max(abs(a), abs(b))
    return scale > 0 and abs(a - b) / scale <= eps


def diff_maps(kind, a, b, out, value_diff):
    for name in sorted(set(a) | set(b)):
        if name not in a:
            out.append(f"{kind} {name}: only in B (= {b[name]})")
        elif name not in b:
            out.append(f"{kind} {name}: only in A (= {a[name]})")
        else:
            value_diff(name, a[name], b[name], out)


def diff_metrics(a, b, eps):
    out = []

    def exact(name, va, vb, out):
        if va != vb:
            out.append(f"counter {name}: {va} != {vb}")

    def approx(name, va, vb, out):
        if not close(float(va), float(vb), eps):
            out.append(f"gauge {name}: {va} != {vb}")

    def hist(name, ha, hb, out):
        for field in ("count", "min", "max", "buckets"):
            if ha.get(field) != hb.get(field):
                out.append(
                    f"histogram {name}.{field}: "
                    f"{ha.get(field)} != {hb.get(field)}")
        for field in ("mean", "p50", "p99", "p999"):
            va, vb = ha.get(field, 0), hb.get(field, 0)
            if not close(float(va), float(vb), eps):
                out.append(f"histogram {name}.{field}: {va} != {vb}")

    diff_maps("counter", a.get("counters", {}), b.get("counters", {}),
              out, exact)
    diff_maps("gauge", a.get("gauges", {}), b.get("gauges", {}),
              out, approx)
    diff_maps("histogram", a.get("histograms", {}), b.get("histograms", {}),
              out, hist)
    return out


def main():
    parser = argparse.ArgumentParser(
        description="Diff two metrics/series/slo JSON sidecars.")
    parser.add_argument("a")
    parser.add_argument("b")
    parser.add_argument(
        "--epsilon", type=float, default=0.0,
        help="relative tolerance for gauges and histogram stats "
             "(default 0 = exact)")
    parser.add_argument(
        "--mode", choices=("metrics", "exact"), default="metrics",
        help="'metrics' understands the counters/gauges/histograms "
             "schema; 'exact' compares any JSON document canonically")
    args = parser.parse_args()

    a, b = load(args.a), load(args.b)
    if args.mode == "exact":
        if a == b:
            return 0
        print(f"documents differ: {args.a} vs {args.b}")
        return 1

    diffs = diff_metrics(a, b, args.epsilon)
    for line in diffs:
        print(line)
    if diffs:
        print(f"{len(diffs)} difference(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
