// kv_cache: a key-value store in the logical pool under a skewed (Zipf)
// workload, showing the locality-balancing loop from §5 in action.
//
// Four "application servers" issue Zipf-distributed gets against tables
// sharded across the pool.  Server 3 is the hot client.  After the
// background migrator runs, the hot shards have moved next to server 3 and
// its local-access fraction jumps.
//
//   $ ./kv_cache
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "workloads/kv_store.h"

int main() {
  auto pool_or = lmp::Pool::Create(lmp::PoolOptions::Small());
  LMP_CHECK(pool_or.ok());
  lmp::Pool& pool = **pool_or;

  // One shard (table) homed on each server.
  constexpr int kShards = 4;
  constexpr std::uint64_t kKeysPerShard = 256;
  std::vector<lmp::workloads::PoolKvStore> shards;
  for (int s = 0; s < kShards; ++s) {
    auto kv = lmp::workloads::PoolKvStore::Create(
        &pool, kKeysPerShard, static_cast<lmp::cluster::ServerId>(s));
    LMP_CHECK(kv.ok());
    shards.push_back(std::move(kv).value());
  }
  for (int s = 0; s < kShards; ++s) {
    for (std::uint64_t k = 0; k < kKeysPerShard; ++k) {
      const std::string value = "shard" + std::to_string(s);
      LMP_CHECK_OK(shards[s].Put(
          static_cast<lmp::cluster::ServerId>(s), k,
          std::span<const std::byte>(
              reinterpret_cast<const std::byte*>(value.data()),
              value.size())));
    }
  }

  auto local_fraction = [&](lmp::cluster::ServerId who) {
    double total = 0;
    for (auto& shard : shards) {
      total += pool.manager().LocalFraction(shard.buffer(), who).value_or(0);
    }
    return total / kShards;
  };
  std::printf("before workload: server 3 holds %.0f%% of shard data\n",
              100 * local_fraction(3));

  // Server 3 issues a heavily skewed read workload across all shards;
  // other servers read lightly.
  lmp::ZipfGenerator zipf(kShards * kKeysPerShard, 0.99, /*seed=*/7);
  lmp::Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t global_key = zipf.Next();
    const int shard = static_cast<int>(global_key / kKeysPerShard);
    const std::uint64_t key = global_key % kKeysPerShard;
    // 85% of traffic comes from server 3.
    const auto from = static_cast<lmp::cluster::ServerId>(
        rng.NextBernoulli(0.85) ? 3 : rng.NextBounded(3));
    const lmp::SimTime now = lmp::Microseconds(i);
    LMP_CHECK(shards[shard].Get(from, key, now).ok());
  }

  // Let the background balancer act (several rounds).
  std::size_t moved = 0;
  for (int round = 0; round < 8; ++round) {
    moved += pool.runtime()
                 .RunAllNow(lmp::Milliseconds(100 + round))
                 .size();
  }
  std::printf("migrator moved %zu segment(s)\n", moved);
  std::printf("after balancing: server 3 holds %.0f%% of shard data\n",
              100 * local_fraction(3));

  // Correctness across migration: every key still readable with the right
  // value.
  for (int s = 0; s < kShards; ++s) {
    for (std::uint64_t k = 0; k < kKeysPerShard; k += 37) {
      auto got = shards[s].Get(0, k);
      LMP_CHECK(got.ok());
    }
  }
  std::printf("all keys verified after migration\n");
  return 0;
}
