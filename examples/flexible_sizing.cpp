// flexible_sizing: §4.5's "memory flexibility" benefit as a live scenario.
//
// A day/night workload shift: during the day every server needs most of
// its DRAM privately (local services); at night an analytics job wants a
// pool bigger than any static split would allow.  The sizing optimizer
// re-solves the private/shared split as demand changes — the knob physical
// pools simply do not have.
//
//   $ ./flexible_sizing
#include <cstdio>

#include "core/lmp.h"
#include "core/sizing.h"

namespace {

void PrintSplit(lmp::cluster::Cluster& cluster, const char* label) {
  std::printf("%s\n", label);
  for (int s = 0; s < cluster.num_servers(); ++s) {
    const auto& srv = cluster.server(static_cast<lmp::cluster::ServerId>(s));
    std::printf("  server %d: %3llu MiB private | %3llu MiB shared\n", s,
                static_cast<unsigned long long>(srv.private_bytes() /
                                                lmp::kMiB),
                static_cast<unsigned long long>(srv.shared_bytes() /
                                                lmp::kMiB));
  }
}

}  // namespace

int main() {
  using lmp::core::ServerDemand;
  using lmp::core::SizingOptimizer;

  lmp::cluster::ClusterConfig config;
  config.num_servers = 4;
  config.server_total_memory = lmp::MiB(96);
  config.server_shared_memory = 0;
  config.frame_size = lmp::KiB(64);
  lmp::cluster::Cluster cluster(config);

  // Daytime: interactive services need 80 MiB private on every server;
  // only a small pool demand exists.
  std::vector<ServerDemand> day{
      {0, lmp::MiB(80), lmp::MiB(8), 1.0},
      {1, lmp::MiB(80), lmp::MiB(8), 1.0},
      {2, lmp::MiB(80), 0, 1.0},
      {3, lmp::MiB(80), 0, 1.0},
  };
  auto day_plan = SizingOptimizer::Solve(cluster, day);
  SizingOptimizer::Apply(cluster, day_plan);
  PrintSplit(cluster, "daytime split (interactive services dominate):");
  std::printf("  expected local fraction: %.0f%%\n\n",
              100 * day_plan.LocalFraction());

  // Nighttime: server 0 runs a big analytics job over a 300 MiB working
  // set — more than any single server holds, and more than a fixed 64 MiB
  // physical pool could serve.  Every server flexes shared upward.
  std::vector<ServerDemand> night{
      {0, lmp::MiB(16), lmp::MiB(300), 2.0},
      {1, lmp::MiB(16), 0, 1.0},
      {2, lmp::MiB(16), 0, 1.0},
      {3, lmp::MiB(16), 0, 1.0},
  };
  auto night_plan = SizingOptimizer::Solve(cluster, night);
  SizingOptimizer::Apply(cluster, night_plan);
  PrintSplit(cluster, "nighttime split (analytics job takes the pool):");
  std::printf("  unmet demand: %llu MiB\n",
              static_cast<unsigned long long>(night_plan.unmet_demand /
                                              lmp::kMiB));

  // Contrast: a physical pool of fixed 64 MiB simply cannot serve 300 MiB.
  std::printf(
      "\nfixed physical pool (64 MiB) vs night demand (300 MiB): "
      "infeasible without moving DIMMs — the §4.5 argument.\n");
  return 0;
}
