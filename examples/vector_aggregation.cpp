// The paper's §4 microbenchmark, end to end, in both layers:
//
//   1. Functional: a real vector in a real (small) pool, summed from one
//      server and via compute shipping — results must agree with the
//      closed form.
//   2. Timing: the same aggregation at paper scale (8/24/64/96 GiB) on the
//      calibrated fluid simulator, printing the Figure 2–5 bandwidth rows.
//
//   $ ./vector_aggregation
#include <cstdio>

#include "baselines/logical.h"
#include "baselines/physical.h"
#include "common/table.h"
#include "workloads/vector_sum.h"

namespace {

void FunctionalDemo() {
  std::printf("--- functional layer (real bytes, small pool) ---\n");
  auto pool_or = lmp::Pool::Create(lmp::PoolOptions::Small());
  LMP_CHECK(pool_or.ok());
  lmp::Pool& pool = **pool_or;

  // 10M doubles (80 MB) spans multiple servers' shared regions.
  const std::uint64_t count = 10'000'000;
  auto vs = lmp::workloads::VectorSum::Create(&pool, count, 0);
  LMP_CHECK(vs.ok());
  LMP_CHECK_OK(vs->FillLinear(0));

  auto pulled = vs->SumFrom(/*runner=*/0);
  auto shipped = vs->SumShipped();
  LMP_CHECK(pulled.ok() && shipped.ok());
  std::printf("pulled sum  = %.6g\n", *pulled);
  std::printf("shipped sum = %.6g\n", *shipped);
  std::printf("expected    = %.6g\n", vs->ExpectedLinearSum());
  LMP_CHECK(*pulled == *shipped);
  LMP_CHECK_OK(vs->Release());
}

void TimingDemo() {
  std::printf("\n--- timing layer (paper-scale, Link1) ---\n");
  lmp::TablePrinter table(
      {"Vector", "Logical GB/s", "Phys cache GB/s", "Phys no-cache GB/s"});
  for (const lmp::Bytes gib : {8ull, 24ull, 64ull, 96ull}) {
    lmp::baselines::VectorSumParams params;
    params.vector_bytes = lmp::GiB(gib);

    auto run = [&](lmp::baselines::MemoryDeployment& d) -> std::string {
      auto r = d.RunVectorSum(params);
      LMP_CHECK(r.ok());
      return r->feasible ? lmp::TablePrinter::Num(r->avg_bandwidth_gbps)
                         : "infeasible";
    };
    lmp::baselines::LogicalDeployment logical(
        lmp::fabric::LinkProfile::Link1());
    lmp::baselines::PhysicalDeployment cache(
        lmp::fabric::LinkProfile::Link1(), true);
    lmp::baselines::PhysicalDeployment nocache(
        lmp::fabric::LinkProfile::Link1(), false);
    table.AddRow({std::to_string(gib) + " GiB", run(logical), run(cache),
                  run(nocache)});
  }
  table.Print();
}

}  // namespace

int main() {
  FunctionalDemo();
  TimingDemo();
  return 0;
}
