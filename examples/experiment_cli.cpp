// experiment_cli: run any paper experiment from the command line.
//
//   $ ./experiment_cli deployment=logical link=link1 gib=64 reps=10
//   $ ./experiment_cli deployment=cache link=link0 gib=24
//   $ ./experiment_cli deployment=swap gib=96 cores=14 balanced=true
//
// Keys: deployment=logical|cache|nocache|swap, link=link0|link1|pond|fpga,
//       gib=<vector GiB>, reps=<repetitions>, cores=<runner cores>,
//       balanced=<bool>, distributed=<bool> (logical only; §4.4 shipping).
#include <cstdio>
#include <memory>

#include "baselines/logical.h"
#include "baselines/physical.h"
#include "baselines/software_swap.h"
#include "common/config.h"

namespace {

using namespace lmp;

fabric::LinkProfile LinkByName(const std::string& name) {
  if (name == "link1") return fabric::LinkProfile::Link1();
  if (name == "pond") return fabric::LinkProfile::PondCxl();
  if (name == "fpga") return fabric::LinkProfile::FpgaCxl();
  return fabric::LinkProfile::Link0();
}

}  // namespace

int main(int argc, char** argv) {
  auto config_or = Config::FromArgs(argc, argv);
  if (!config_or.ok()) {
    std::fprintf(stderr, "bad arguments: %s\n",
                 config_or.status().ToString().c_str());
    return 1;
  }
  const Config& config = *config_or;

  const std::string deployment_name =
      config.GetString("deployment", "logical").value_or("logical");
  const fabric::LinkProfile link =
      LinkByName(config.GetString("link", "link0").value_or("link0"));

  baselines::VectorSumParams params;
  params.vector_bytes = GiB(static_cast<std::uint64_t>(
      config.GetInt("gib", 24).value_or(24)));
  params.repetitions =
      static_cast<int>(config.GetInt("reps", 10).value_or(10));
  params.cores = static_cast<int>(config.GetInt("cores", 14).value_or(14));
  params.balanced_slices =
      config.GetBool("balanced", false).value_or(false);
  const bool distributed =
      config.GetBool("distributed", false).value_or(false);

  StatusOr<baselines::VectorSumResult> result =
      baselines::VectorSumResult{};
  std::string label;
  if (deployment_name == "cache" || deployment_name == "nocache") {
    baselines::PhysicalDeployment deployment(link,
                                             deployment_name == "cache");
    label = std::string(deployment.name());
    result = deployment.RunVectorSum(params);
  } else if (deployment_name == "swap") {
    baselines::SoftwareSwapDeployment deployment(link);
    label = std::string(deployment.name());
    result = deployment.RunVectorSum(params);
  } else {
    baselines::LogicalDeployment deployment(link);
    label = std::string(deployment.name());
    result = distributed ? deployment.RunDistributedSum(params)
                         : deployment.RunVectorSum(params);
  }

  if (!result.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const auto& r = *result;
  std::printf("deployment=%s link=%s vector=%llu GiB cores=%d reps=%d%s\n",
              label.c_str(), link.name.c_str(),
              static_cast<unsigned long long>(params.vector_bytes / kGiB),
              params.cores, params.repetitions,
              distributed ? " (distributed)" : "");
  if (!r.feasible) {
    std::printf("INFEASIBLE: %s\n", r.infeasible_reason.c_str());
    return 0;
  }
  std::printf(
      "avg %.1f GB/s | rep1 %.1f | steady %.1f | local %.1f%% | "
      "%.0f ms simulated\n",
      r.avg_bandwidth_gbps, r.first_rep_gbps, r.steady_rep_gbps,
      100 * r.local_fraction, r.total_time_ns / kNsPerMs);
  return 0;
}
