// pool_operations: the operator's view of a running LMP.
//
// Shows the observability and control surface a deployment team would
// actually use: pool snapshots (capacity, balancer backlog), the metrics
// registry, buffer grow/shrink, segment splitting for finer migration
// units, and draining a server's shared region before taking it down for
// maintenance.
//
//   $ ./pool_operations
#include <cstdio>

#include "core/runtime.h"
#include "core/lmp.h"

namespace {

void PrintSnapshot(const lmp::core::PoolManager::PoolSnapshot& snap,
                   const char* label) {
  std::printf("%s\n", label);
  for (const auto& s : snap.servers) {
    std::printf(
        "  server %u: %3llu/%3llu MiB used%s%s\n", s.server,
        static_cast<unsigned long long>(s.used / lmp::kMiB),
        static_cast<unsigned long long>(s.shared / lmp::kMiB),
        s.remote_hot > 0 ? "  [balancer backlog]" : "",
        s.crashed ? "  [CRASHED]" : "");
  }
}

}  // namespace

int main() {
  auto pool_or = lmp::Pool::Create(lmp::PoolOptions::Small());
  LMP_CHECK(pool_or.ok());
  lmp::Pool& pool = **pool_or;
  auto& manager = pool.manager();
  lmp::MetricsRegistry metrics;
  manager.set_metrics(&metrics);
  lmp::core::LmpRuntime runtime(&manager);

  // A dataset that grows over time (log ingestion, say).
  auto dataset = pool.Allocate(lmp::MiB(8), 0);
  LMP_CHECK(dataset.ok());
  for (int day = 0; day < 3; ++day) {
    LMP_CHECK_OK(manager.Grow(*dataset, lmp::MiB(8), 0));
  }
  std::printf("dataset grown to %llu MiB\n",
              static_cast<unsigned long long>(
                  manager.Describe(*dataset)->size / lmp::kMiB));

  // Finer migration units, then retention-expire the oldest quarter.
  LMP_CHECK_OK(manager.SplitSegmentAt(*dataset, lmp::MiB(8)));
  LMP_CHECK_OK(manager.Shrink(*dataset, lmp::MiB(24)));
  std::printf("retention shrink to %llu MiB\n",
              static_cast<unsigned long long>(
                  manager.Describe(*dataset)->size / lmp::kMiB));

  PrintSnapshot(manager.Snapshot(0), "\npool before maintenance:");

  // Maintenance: drain server 0's shared region before taking it down.
  auto moves = runtime.DrainServer(0, lmp::MiB(4), lmp::Seconds(1));
  LMP_CHECK(moves.ok());
  std::printf("\ndrained server 0: %zu segment(s) relocated\n",
              moves->size());
  PrintSnapshot(manager.Snapshot(lmp::Seconds(1)),
                "pool after drain (server 0 down to 4 MiB shared):");

  // Everything still readable.
  std::vector<std::byte> probe(lmp::KiB(4));
  LMP_CHECK_OK(manager.Read(1, *dataset, lmp::MiB(12), probe));
  std::printf("\npost-drain read OK\n");

  std::printf("\noperational metrics:\n%s", metrics.Report().c_str());
  return 0;
}
