// near_memory_compute: §4.4's computation shipping on a graph workload.
//
// A PageRank over a CSR graph stored in the pool, run two ways:
//   * pulled  — one server walks the whole adjacency (remote for the parts
//               homed on peers);
//   * shipped — every server scans only its local share of the adjacency.
// The ranks agree bit-for-bit; the hotness profile shows the shipped run
// generated no remote traffic — the "all memory accesses are local" claim.
//
//   $ ./near_memory_compute
#include <cstdio>
#include <vector>

#include "workloads/graph.h"

int main() {
  auto pool_or = lmp::Pool::Create(lmp::PoolOptions::Small());
  LMP_CHECK(pool_or.ok());
  lmp::Pool& pool = **pool_or;

  // A ring-with-chords graph large enough to span several servers.
  const std::uint32_t n = 300000;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(n * 3);
  for (std::uint32_t u = 0; u < n; ++u) {
    edges.push_back({u, (u + 1) % n});
    edges.push_back({u, (u * 31 + 7) % n});
    edges.push_back({u, (u * 101 + 13) % n});
  }
  auto graph = lmp::workloads::PoolGraph::FromEdges(&pool, n, edges, 0);
  LMP_CHECK(graph.ok());
  std::printf("graph in pool: %u vertices, %llu edges\n",
              graph->num_vertices(),
              static_cast<unsigned long long>(graph->num_edges()));

  auto frac =
      pool.manager().LocalFraction(graph->edges_buffer(), 0).value_or(0);
  std::printf("adjacency is %.0f%% local to server 0\n", 100 * frac);

  auto pulled = graph->PageRank(/*runner=*/0, 10, 0.85, /*shipped=*/false);
  LMP_CHECK(pulled.ok());
  auto shipped = graph->PageRank(/*runner=*/0, 10, 0.85, /*shipped=*/true);
  LMP_CHECK(shipped.ok());

  double max_diff = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    max_diff = std::max(max_diff, std::abs((*pulled)[v] - (*shipped)[v]));
  }
  std::printf("pulled vs shipped PageRank max diff: %g\n", max_diff);
  LMP_CHECK(max_diff < 1e-12);

  // BFS from vertex 0 as a second pool-resident analytic.
  auto depth = graph->Bfs(1, 0);
  LMP_CHECK(depth.ok());
  std::uint32_t reached = 0, deepest = 0;
  for (std::uint32_t d : *depth) {
    if (d != UINT32_MAX) {
      ++reached;
      deepest = std::max(deepest, d);
    }
  }
  std::printf("BFS reached %u/%u vertices, max depth %u\n", reached, n,
              deepest);

  LMP_CHECK_OK(graph->Release());
  std::printf("near-memory compute demo done\n");
  return 0;
}
