// failure_recovery: the §5 "Failure domains" story.
//
// In an LMP a host crash takes down part of the pool.  This demo protects
// one buffer with replication and another stripe with XOR erasure coding,
// crashes a server, and shows both recover — while an unprotected buffer
// is reported as lost through the Status interface (failure reporting).
//
//   $ ./failure_recovery
#include <cstdio>
#include <vector>

#include "core/erasure.h"
#include "core/lmp.h"

namespace {

std::vector<std::byte> Pattern(std::size_t n, int seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 17 + seed) & 0xFF);
  }
  return v;
}

}  // namespace

int main() {
  auto pool_or = lmp::Pool::Create(lmp::PoolOptions::Small());
  LMP_CHECK(pool_or.ok());
  lmp::Pool& pool = **pool_or;
  auto& manager = pool.manager();

  // --- replicated buffer on server 0 -------------------------------------
  auto replicated = pool.Allocate(lmp::KiB(256), 0);
  LMP_CHECK(replicated.ok());
  const auto replicated_data = Pattern(lmp::KiB(256), 1);
  LMP_CHECK_OK(manager.Write(0, *replicated, 0, replicated_data));
  LMP_CHECK_OK(pool.replication().ProtectBuffer(*replicated));
  std::printf("replicated buffer protected (overhead %.1fx)\n",
              pool.replication().CapacityOverhead());

  // --- erasure-coded stripe across servers 0..1 ---------------------------
  // Group size 2 on a 4-server pool: members on two servers, parity on a
  // third, which leaves a spare server to host a rebuilt segment after a
  // crash (recovery never co-locates group members).
  lmp::core::XorErasureManager erasure(&manager, /*group_size=*/2);
  std::vector<lmp::core::BufferId> stripe;
  std::vector<lmp::core::SegmentId> stripe_segments;
  for (int s = 0; s < 2; ++s) {
    auto buf = pool.Allocate(lmp::KiB(128),
                             static_cast<lmp::cluster::ServerId>(s));
    LMP_CHECK(buf.ok());
    LMP_CHECK_OK(manager.Write(static_cast<lmp::cluster::ServerId>(s), *buf,
                               0, Pattern(lmp::KiB(128), 10 + s)));
    stripe.push_back(*buf);
    stripe_segments.push_back(manager.Describe(*buf)->segments[0]);
  }
  LMP_CHECK_OK(erasure.ProtectSegments(stripe_segments));
  std::printf("erasure stripe protected (overhead %.2fx)\n",
              erasure.CapacityOverhead());

  // --- unprotected buffer on server 0 --------------------------------------
  auto doomed = pool.Allocate(lmp::KiB(64), 0);
  LMP_CHECK(doomed.ok());

  // --- crash! -----------------------------------------------------------------
  std::printf("\ncrashing server 0...\n");
  const auto lost = manager.OnServerCrash(0);
  LMP_CHECK(lost.ok());
  std::printf("%zu segment(s) lost outright\n", lost->size());

  // Replicated buffer failed over transparently.
  std::vector<std::byte> readback(lmp::KiB(256));
  LMP_CHECK_OK(manager.Read(1, *replicated, 0, readback));
  LMP_CHECK(readback == replicated_data);
  std::printf("replicated buffer: failover read OK\n");

  // Erasure member on server 0 must be rebuilt first.
  auto rebuilt = erasure.RecoverAllLost();
  LMP_CHECK(rebuilt.ok());
  std::printf("erasure recovery rebuilt %d segment(s)\n", *rebuilt);
  std::vector<std::byte> stripe_read(lmp::KiB(128));
  LMP_CHECK_OK(manager.Read(1, stripe[0], 0, stripe_read));
  LMP_CHECK(stripe_read == Pattern(lmp::KiB(128), 10));
  std::printf("erasure stripe: rebuilt data verified\n");

  // Unprotected buffer reports loss as an error, not a crash.
  std::vector<std::byte> out(16);
  const lmp::Status status = manager.Read(1, *doomed, 0, out);
  std::printf("unprotected buffer read: %s\n", status.ToString().c_str());
  LMP_CHECK(status.code() == lmp::StatusCode::kDataLoss);

  // Re-establish redundancy for the next crash.
  auto restored = pool.replication().RestoreRedundancy();
  LMP_CHECK(restored.ok());
  std::printf("\nredundancy restored (%d new replica(s)); demo done\n",
              *restored);
  return 0;
}
