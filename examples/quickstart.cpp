// Quickstart: create a logical memory pool, allocate a buffer in it, write
// and read data from different servers, and watch the background runtime
// migrate a hot buffer toward its user.
//
//   $ ./quickstart
//
// Uses the small functional configuration (4 servers x 64 MiB with real
// backing memory), so everything here moves real bytes.
#include <cstdio>
#include <span>
#include <vector>

#include "core/lmp.h"

int main() {
  // 1. Bring up a pool: 4 servers, each contributing its DRAM to the pool.
  auto pool_or = lmp::Pool::Create(lmp::PoolOptions::Small());
  if (!pool_or.ok()) {
    std::fprintf(stderr, "pool creation failed: %s\n",
                 pool_or.status().ToString().c_str());
    return 1;
  }
  lmp::Pool& pool = **pool_or;
  std::printf("pool up: %d servers, %llu MiB pooled\n",
              pool.cluster().num_servers(),
              static_cast<unsigned long long>(
                  pool.cluster().PooledCapacityBytes() / lmp::kMiB));

  // 2. Allocate 1 MiB, preferring server 0's shared region.
  auto buffer_or = pool.Allocate(lmp::MiB(1), /*preferred=*/0);
  if (!buffer_or.ok()) {
    std::fprintf(stderr, "allocation failed: %s\n",
                 buffer_or.status().ToString().c_str());
    return 1;
  }
  const lmp::core::BufferId buffer = *buffer_or;

  // 3. Server 0 writes; server 2 reads the same logical buffer.
  std::vector<double> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = 0.5 * i;
  LMP_CHECK_OK(pool.WriteArray<double>(0, buffer, 0,
                                       std::span<const double>(data)));
  std::vector<double> readback(1000);
  LMP_CHECK_OK(pool.ReadArray<double>(2, buffer, 0,
                                      std::span<double>(readback)));
  std::printf("server 2 read back %zu doubles; first=%g last=%g\n",
              readback.size(), readback.front(), readback.back());

  // 4. Keep scanning the whole buffer from server 2 so the hotness profile
  //    marks it hot-and-remote (recent traffic must exceed the copy cost),
  //    then let the background migrator act.
  std::vector<double> scan(lmp::MiB(1) / sizeof(double));
  for (int i = 0; i < 50; ++i) {
    LMP_CHECK_OK(pool.ReadArray<double>(2, buffer, 0,
                                        std::span<double>(scan),
                                        lmp::Milliseconds(200 + i)));
  }
  const auto migrations = pool.Tick(lmp::Milliseconds(251));
  for (const auto& m : migrations) {
    std::printf("runtime migrated segment %u: %s -> %s (%llu KiB)\n",
                m.segment, m.from.ToString().c_str(),
                m.to.ToString().c_str(),
                static_cast<unsigned long long>(m.bytes / lmp::kKiB));
  }
  auto frac = pool.manager().LocalFraction(buffer, 2);
  std::printf("buffer is now %.0f%% local to server 2\n",
              100.0 * frac.value_or(0));

  // 5. Data survived the move, at the same logical buffer id.
  LMP_CHECK_OK(pool.ReadArray<double>(2, buffer, 0,
                                      std::span<double>(readback)));
  std::printf("post-migration read OK: first=%g last=%g\n",
              readback.front(), readback.back());

  LMP_CHECK_OK(pool.Free(buffer));
  std::printf("quickstart done\n");
  return 0;
}
